#include "serving/batch.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "parallel/partition.h"

namespace ocular {

namespace {

/// Users per serving tile. The bulk traversal runs item-block outer, users
/// inner, so a Vᵀ block row pulled into cache by one user's scoring pass
/// is reused by the next ~31 users before eviction — per-user streaming of
/// the whole item-factor matrix becomes per-tile streaming.
constexpr uint32_t kUserTileRows = 32;

/// Per-worker scratch of the tiled bulk path: one score row plus a
/// selector + selection buffer per tile slot. Reused across tiles, so the
/// steady state allocates only the per-user output lists.
struct BulkWorkspace {
  std::vector<double> row;
  std::vector<std::vector<ScoredItem>> lists;
  std::vector<TopMSelector> selectors;
  std::vector<size_t> cursors;   // per-slot exclusion cursor
  std::vector<uint8_t> active;   // slot serves a user this tile

  void Reserve(uint32_t m, uint32_t block_items) {
    row.reserve(block_items);
    lists.resize(kUserTileRows);
    for (auto& list : lists) list.reserve(topm::SelectionCapacity(m));
    selectors.resize(kUserTileRows);
    cursors.resize(kUserTileRows);
    active.resize(kUserTileRows);
  }
};

/// Serves the user rows [lo, hi) through the tiled blocked engine into
/// `out` — the exact mode of the bulk path (candidate mode is served
/// per-user through ServeTopMCandidates instead).
void ServeRangeTiled(const Recommender& rec, const CsrMatrix& train,
                     const BatchOptions& options, BulkWorkspace* ws,
                     std::vector<std::vector<ScoredItem>>* out, size_t lo,
                     size_t hi) {
  const uint32_t n = rec.num_items();
  const uint32_t block_items = options.block_items == 0
                                   ? kDefaultScoreBlockItems
                                   : options.block_items;
  const double threshold =
      options.min_score > 0.0 ? options.min_score
                              : -std::numeric_limits<double>::infinity();
  // Unthresholded tiles select on the raw kernel (survivors mapped back in
  // FinishRaw); exact min_score thresholding needs public scores.
  const bool raw = options.min_score <= 0.0;
  ws->row.resize(std::min<size_t>(block_items, n));

  for (size_t t0 = lo; t0 < hi; t0 += kUserTileRows) {
    const size_t t1 = std::min<size_t>(hi, t0 + kUserTileRows);
    const uint32_t tile_users = static_cast<uint32_t>(t1 - t0);
    for (uint32_t k = 0; k < tile_users; ++k) {
      const uint32_t u = static_cast<uint32_t>(t0 + k);
      ws->active[k] =
          !(options.skip_cold_users && train.RowDegree(u) == 0);
      if (ws->active[k]) {
        ws->selectors[k].Begin(&ws->lists[k], options.m, threshold, n);
        ws->cursors[k] = 0;
      }
    }
    for (uint32_t b0 = 0; b0 < n; b0 += block_items) {
      const uint32_t b1 = std::min(n, b0 + block_items);
      const std::span<double> row(ws->row.data(), b1 - b0);
      for (uint32_t k = 0; k < tile_users; ++k) {
        if (!ws->active[k]) continue;
        const uint32_t u = static_cast<uint32_t>(t0 + k);
        if (raw) {
          rec.RawScoreBlock(u, b0, b1, row);
        } else {
          rec.ScoreBlock(u, b0, b1, row);
        }
        topm::MaskExcluded(row, b0, train.Row(u), &ws->cursors[k]);
        ws->selectors[k].ScanRun(row.data(), b0, b1 - b0);
      }
    }
    for (uint32_t k = 0; k < tile_users; ++k) {
      if (!ws->active[k]) continue;
      if (raw) {
        ws->selectors[k].FinishRaw(rec);
      } else {
        ws->selectors[k].Finish();
      }
      (*out)[t0 + k].assign(ws->lists[k].begin(), ws->lists[k].end());
    }
  }
}

}  // namespace

Result<BatchRecommendations> RecommendForAllUsers(const Recommender& rec,
                                                  const CsrMatrix& train,
                                                  const BatchOptions& options,
                                                  ThreadPool* pool) {
  if (options.m == 0) return Status::InvalidArgument("m must be positive");
  if (train.num_rows() != rec.num_users() ||
      train.num_cols() != rec.num_items()) {
    return Status::InvalidArgument(
        "training matrix shape does not match the recommender");
  }
  if (options.candidates != nullptr &&
      options.candidates->dims_per_user.size() != rec.num_users()) {
    return Status::InvalidArgument(
        "candidate index built for a different model");
  }
  BatchRecommendations out;
  out.recommendations.resize(rec.num_users());

  if (options.candidates != nullptr) {
    // Candidate mode: per-user pruned serving.
    ServeOptions serve;
    serve.m = options.m;
    serve.min_score = options.min_score;
    serve.block_items = options.block_items;
    const size_t max_candidates = options.candidates->max_candidate_items;
    auto serve_range = [&](size_t lo, size_t hi, ServeWorkspace* ws) {
      for (size_t row = lo; row < hi; ++row) {
        const uint32_t u = static_cast<uint32_t>(row);
        if (options.skip_cold_users && train.RowDegree(u) == 0) continue;
        const auto ranked = ServeTopMCandidates(
            rec, u, train.Row(u), serve, *options.candidates, ws);
        out.recommendations[u].assign(ranked.begin(), ranked.end());
      }
    };
    if (pool != nullptr) {
      const std::vector<std::pair<size_t, size_t>> ranges =
          BalancedRowRanges(train.row_ptr(), pool->num_threads());
      std::vector<ServeWorkspace> workspaces(pool->num_threads() + 1);
      for (ServeWorkspace& ws : workspaces) {
        ws.Reserve(serve.m, serve.block_items, max_candidates);
      }
      pool->ParallelForRanges(ranges, [&](size_t lo, size_t hi) {
        serve_range(lo, hi, &workspaces[ThreadPool::ScratchSlot(pool->num_threads())]);
      });
    } else {
      ServeWorkspace ws;
      ws.Reserve(serve.m, serve.block_items, max_candidates);
      serve_range(0, rec.num_users(), &ws);
    }
  } else if (pool != nullptr) {
    // nnz-balanced ranges + one workspace per worker (+1 for an inline
    // caller), replacing the old uniform /*grain=*/4 chunking. Each worker
    // serves its ranges tile-by-tile; per-user results are independent of
    // the tiling, so serial and parallel outputs are bit-identical.
    const std::vector<std::pair<size_t, size_t>> ranges =
        BalancedRowRanges(train.row_ptr(), pool->num_threads());
    std::vector<BulkWorkspace> workspaces(pool->num_threads() + 1);
    for (BulkWorkspace& ws : workspaces) {
      ws.Reserve(options.m, options.block_items);
    }
    pool->ParallelForRanges(ranges, [&](size_t lo, size_t hi) {
      ServeRangeTiled(rec, train, options,
                      &workspaces[ThreadPool::ScratchSlot(pool->num_threads())],
                      &out.recommendations, lo, hi);
    });
  } else {
    BulkWorkspace ws;
    ws.Reserve(options.m, options.block_items);
    ServeRangeTiled(rec, train, options, &ws, &out.recommendations, 0,
                    rec.num_users());
  }

  for (const auto& list : out.recommendations) {
    if (!list.empty()) {
      ++out.users_scored;
      out.total_items += list.size();
    }
  }
  return out;
}

}  // namespace ocular
