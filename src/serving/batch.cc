#include "serving/batch.h"

#include <atomic>

namespace ocular {

Result<BatchRecommendations> RecommendForAllUsers(const Recommender& rec,
                                                  const CsrMatrix& train,
                                                  const BatchOptions& options,
                                                  ThreadPool* pool) {
  if (options.m == 0) return Status::InvalidArgument("m must be positive");
  if (train.num_rows() != rec.num_users() ||
      train.num_cols() != rec.num_items()) {
    return Status::InvalidArgument(
        "training matrix shape does not match the recommender");
  }
  BatchRecommendations out;
  out.recommendations.resize(rec.num_users());

  auto process = [&](size_t u32) {
    const uint32_t u = static_cast<uint32_t>(u32);
    if (options.skip_cold_users && train.RowDegree(u) == 0) return;
    auto ranked = rec.Recommend(u, options.m, train);
    if (options.min_score > 0.0) {
      size_t keep = 0;
      while (keep < ranked.size() && ranked[keep].score >= options.min_score) {
        ++keep;
      }
      ranked.resize(keep);
    }
    out.recommendations[u] = std::move(ranked);
  };

  if (pool != nullptr) {
    pool->ParallelFor(0, rec.num_users(), process, /*grain=*/4);
  } else {
    for (uint32_t u = 0; u < rec.num_users(); ++u) process(u);
  }

  for (const auto& list : out.recommendations) {
    if (!list.empty()) {
      ++out.users_scored;
      out.total_items += list.size();
    }
  }
  return out;
}

}  // namespace ocular
