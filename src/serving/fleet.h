#ifndef OCULAR_SERVING_FLEET_H_
#define OCULAR_SERVING_FLEET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace ocular {

/// \file
/// \brief The replicated-serving front tier (PR 8): FleetServer proxies
/// the newline-JSON protocol onto N backend `ocular_served` replicas
/// over keep-alive loopback TCP, keeping the fleet answering — with
/// replies bit-identical to any single replica — while individual
/// replicas are killed, hung, shedding, or draining. Routing is
/// rendezvous (highest-random-weight) hashing on the request's `user`
/// so replica-local caches stay warm; user-less verbs round-robin.
/// Robustness comes from four cooperating pieces: a probed health state
/// machine per replica (ReplicaHealth), failover with one bounded
/// retry, optional hedged requests for tail latency, and 503
/// integration in both directions (a replica's shed is a soft
/// route-around; a fleet with no healthy replica sheds itself instead
/// of hanging). See docs/ARCHITECTURE.md ("Front tier") and the
/// "Running a fleet" runbook in docs/OPERATIONS.md.

/// \brief Health states of one replica, as tracked by the front tier.
enum class ReplicaState : uint8_t {
  kHealthy,   ///< routable; failures are being counted against it
  kEjected,   ///< out of rotation; waiting out the reopen backoff
  kHalfOpen,  ///< trial mode: one probe decides readmit vs re-eject
};

/// \brief Human-readable state name ("healthy" / "ejected" /
/// "half-open") for logs and the fleet `stats` reply.
const char* ReplicaStateName(ReplicaState state);

/// \brief Tunables of the per-replica health state machine.
struct HealthOptions {
  /// Consecutive failures (connect error, I/O deadline, malformed
  /// reply) that eject a healthy replica. Successes reset the count —
  /// an occasional blip never ejects, a dead socket does on the third
  /// try.
  uint32_t fail_threshold = 3;
  /// Base delay an ejected replica sits out before a half-open probe,
  /// doubled for every failed reopen cycle of the same outage (capped
  /// at reopen_cap_ms) so a replica that stays dead is probed ever more
  /// lazily.
  uint32_t reopen_after_ms = 500;
  /// Cap on the doubled reopen delay.
  uint64_t reopen_cap_ms = 10'000;
};

/// \brief The half-open health state machine of one replica —
/// deliberately socket-free and clock-free (every transition takes an
/// explicit `now_ms`) so the policy is unit-testable in isolation from
/// the integration drills. Not thread-safe; FleetServer serializes
/// access on its own mutex.
///
/// Transitions:
///   kHealthy  --OnFailure x fail_threshold--> kEjected   (ejections++)
///   kEjected  --MaybeHalfOpen after reopen--> kHalfOpen
///   kHalfOpen --OnSuccess-->                  kHealthy   (readmissions++)
///   kHalfOpen --OnFailure-->                  kEjected   (same outage:
///                 no new ejection counted, reopen delay doubles)
///
/// A 503 shed (OnShed) is a *soft* ejection: the replica is alive and
/// explicitly asking for relief, so it is routed around for its
/// retry_after_ms window without touching the failure count or the
/// state — Routable() goes false for the window, nothing else moves.
/// Stale reports (an in-flight request failing against an
/// already-ejected replica) are ignored.
class ReplicaHealth {
 public:
  explicit ReplicaHealth(HealthOptions options = {}) : options_(options) {}

  /// A request or probe got a well-formed reply from this replica.
  void OnSuccess(int64_t now_ms);
  /// A request or probe failed hard: connect error, I/O deadline, EOF
  /// mid-reply, or a malformed reply line.
  void OnFailure(int64_t now_ms);
  /// The replica answered 503: route around it for `retry_after_ms`
  /// (clamped through retry::ClampRetryAfterMs) without ejecting.
  void OnShed(int64_t now_ms, uint64_t retry_after_ms);
  /// If ejected and the reopen delay has elapsed, enters kHalfOpen and
  /// returns true — the caller owes the replica one probe.
  bool MaybeHalfOpen(int64_t now_ms);

  /// True when requests may be routed here: healthy AND outside any
  /// soft-shed window.
  bool Routable(int64_t now_ms) const {
    return state_ == ReplicaState::kHealthy && now_ms >= soft_until_ms_;
  }
  ReplicaState state() const { return state_; }
  /// When an ejected replica becomes due for a half-open probe.
  int64_t reopen_at_ms() const { return reopen_at_ms_; }
  /// End of the current soft-shed window (0 = none).
  int64_t soft_until_ms() const { return soft_until_ms_; }
  uint32_t consecutive_failures() const { return consecutive_failures_; }
  /// kHealthy -> kEjected transitions (a failed reopen cycle re-ejects
  /// without incrementing: one outage counts once, however long it
  /// lasts and however many probes it eats).
  uint64_t ejections() const { return ejections_; }
  /// kHalfOpen -> kHealthy transitions.
  uint64_t readmissions() const { return readmissions_; }

 private:
  int64_t ReopenDelayMs() const;

  HealthOptions options_;
  ReplicaState state_ = ReplicaState::kHealthy;
  uint32_t consecutive_failures_ = 0;
  /// Failed reopen cycles of the current outage (backoff exponent).
  uint32_t reopen_round_ = 0;
  int64_t reopen_at_ms_ = 0;
  int64_t soft_until_ms_ = 0;
  uint64_t ejections_ = 0;
  uint64_t readmissions_ = 0;
};

/// \brief Appends to `*out` the replica indices [0, num_replicas) in
/// rendezvous (highest-random-weight) order for `key`: each replica's
/// weight is a hash of (key, replica), and the order sorts weights
/// descending. Properties the fleet relies on: the order is
/// deterministic per key (cache-warm routing and reproducible tests),
/// near-uniform over replicas across keys, and *minimally disruptive* —
/// ejecting one replica only moves the keys it owned (every other key's
/// first healthy choice is unchanged), unlike modulo hashing where one
/// ejection reshuffles everything.
void FleetRouteOrder(uint64_t key, uint32_t num_replicas,
                     std::vector<uint32_t>* out);

/// \brief Point-in-time fleet counters, as reported by Stats() and the
/// front tier's own `stats` verb.
struct FleetReplicaStats {
  uint16_t port = 0;
  ReplicaState state = ReplicaState::kHealthy;
  uint64_t forwards = 0;   ///< requests sent to this replica (incl. retries)
  uint64_t failures = 0;   ///< forwards that failed hard
  uint64_t ejections = 0;
  uint64_t readmissions = 0;
};

struct FleetStatsSnapshot {
  uint64_t requests_proxied = 0;  ///< client requests answered (any verb)
  uint64_t failovers = 0;     ///< requests that needed the retry replica
  uint64_t hedges_sent = 0;   ///< hedge copies issued
  uint64_t hedges_won = 0;    ///< hedge copies that answered first
  uint64_t no_healthy_503s = 0;  ///< requests the fleet itself shed
  uint64_t rejected_verbs = 0;   ///< update/reload refused at the front
  uint64_t probes_sent = 0;
  uint64_t probe_failures = 0;
  uint64_t connections_shed = 0;  ///< front-door accept-queue sheds
  uint64_t ejections = 0;         ///< sum over replicas
  uint64_t readmissions = 0;      ///< sum over replicas
  std::vector<FleetReplicaStats> replicas;
};

/// \brief Recomputes the snapshot's fleet-wide ejections/readmissions
/// totals from its per-replica rows — the merge half of
/// FleetServer::Stats(), factored out pure so the counter plumbing is
/// unit-testable without sockets or live replicas.
void SumReplicaTotals(FleetStatsSnapshot* s);

/// \brief Renders a snapshot as the front tier's `stats` reply — the pure
/// serialization half of the verb ({"ok":true,"fleet":true,...} with one
/// object per replica). FleetServer::FleetStatsReply() is exactly
/// RenderFleetStats(Stats()).
std::string RenderFleetStats(const FleetStatsSnapshot& s);

/// \brief The front-tier proxy. Structurally a sibling of
/// RequestServer's TCP loop — listener thread, bounded accept queue,
/// fixed shared-nothing worker pool, pipelined request lines with
/// batched reply writes — but each worker's "handler" forwards the line
/// to a replica over that worker's own keep-alive backend connections
/// and relays the reply byte-for-byte, so fleet replies are
/// bit-identical to single-replica replies by construction.
///
/// Verbs handled at the front instead of forwarded:
///   ping   — the fleet's own liveness ({"fleet":true,...})
///   stats  — FleetStatsSnapshot as JSON ({"fleet":true,...})
///   quit   — ends the client connection
///   update, reload — refused with a 501-style error: both mutate
///       replica-local state, and forwarding to one replica would
///       silently fork the fleet's models (apply them per replica; see
///       the OPERATIONS.md runbook)
/// Everything else — recommend (by user or history), models, and any
/// unknown verb — is forwarded verbatim, so error shapes match a
/// direct replica connection too.
class FleetServer {
 public:
  struct Options {
    /// Backend replica ports on 127.0.0.1, in fleet order. At least one.
    std::vector<uint16_t> replicas;
    /// Front-door worker threads (each owns one keep-alive connection
    /// per replica).
    size_t num_workers = 4;
    /// Accepted connections that may wait for a worker before the
    /// listener sheds with a 503 reply (same contract as the daemon's).
    size_t accept_queue = 128;
    /// Longest client request line before a 413-style reply + close.
    size_t max_request_bytes = 1 << 20;
    /// Per-hop I/O deadline against a replica (connect/send/reply), and
    /// the front door's wakeup tick for the drain/stop latches. A
    /// replica that takes longer than this to answer counts a failure.
    uint32_t io_timeout_ms = 1000;
    /// Hedge threshold: when > 0 and the primary replica has not
    /// answered within this many ms, the request is also sent to the
    /// next healthy replica and the first complete reply wins (the
    /// loser's connection is closed — with pipelined keep-alive streams
    /// an orphaned reply cannot be left to desync the next request).
    /// Set it near the fleet's steady-state p99. 0 = off.
    uint32_t hedge_after_ms = 0;
    /// Health-probe cadence per replica (the `ping` verb).
    uint32_t probe_interval_ms = 200;
    /// retry_after_ms hint carried in the fleet's own 503 replies when
    /// every replica is out of rotation (the reply still arrives
    /// promptly — a fleet with nothing healthy must shed, not hang).
    uint32_t retry_after_ms = 100;
    /// Per-replica health policy.
    HealthOptions health;
  };

  explicit FleetServer(Options options);
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// \brief Serves on 127.0.0.1:`port` (0 = kernel-assigned, see
  /// bound_port()) until Stop(), a SIGTERM/SIGINT drain latch
  /// (RequestServer::InstallShutdownSignalHandler — shared with the
  /// daemon), or `max_connections` accepted connections (0 = forever).
  /// Starts the prober and worker threads; joins them before returning.
  Status RunLoop(uint16_t port, uint64_t max_connections = 0);

  /// \brief The port RunLoop listens on (0 while not serving);
  /// published after listen() succeeds.
  uint16_t bound_port() const {
    return bound_port_.load(std::memory_order_acquire);
  }

  /// \brief Asks RunLoop to return (graceful: in-flight request lines
  /// are answered, then connections close). Callable from any thread;
  /// takes effect within one io_timeout_ms tick.
  void Stop() { stop_.store(true, std::memory_order_relaxed); }

  /// \brief Proxies one request line inline on the caller's private
  /// backend connections (the same slot HandleLine-style tests use);
  /// NOT safe to call concurrently with itself. The TCP pool uses
  /// separate per-worker slots.
  std::string HandleLine(const std::string& line);

  /// \brief Current counters + per-replica health states.
  FleetStatsSnapshot Stats() const;

 private:
  struct WorkerSlot;

  /// Outcome of one forward attempt against one replica.
  enum class ForwardOutcome {
    kReply,  ///< a complete reply line came back
    kShed,   ///< the replica answered 503 (soft route-around)
    kFailed, ///< connect error, deadline, EOF, or malformed reply
  };

  int64_t NowMs() const;
  bool EnsureBackend(WorkerSlot* w, uint32_t replica);
  void CloseBackend(WorkerSlot* w, uint32_t replica);
  bool SendRequest(WorkerSlot* w, uint32_t replica, const std::string& line);
  ForwardOutcome ClassifyReply(WorkerSlot* w, uint32_t replica,
                               const std::string& reply,
                               uint64_t* shed_hint_ms);
  ForwardOutcome ForwardOnce(WorkerSlot* w, uint32_t replica,
                             const std::string& line, uint32_t timeout_ms,
                             std::string* reply, uint64_t* shed_hint_ms);
  std::string ProxyOne(WorkerSlot* w, const std::string& line, bool* quit);
  std::string ProxyRouted(WorkerSlot* w, const std::string& line,
                          const std::vector<uint32_t>& order);
  std::string HedgedForward(WorkerSlot* w, const std::string& line,
                            uint32_t primary, uint32_t hedge);
  std::string NoHealthyReply();
  std::string FleetPingReply();
  std::string FleetStatsReply();

  void ReportSuccess(uint32_t replica);
  void ReportFailure(uint32_t replica);
  void ReportShed(uint32_t replica, uint64_t retry_after_ms);

  void ServeClientConnection(int fd, WorkerSlot* w);
  void ShedClientConnection(int fd);
  void RunProber();
  void ProbeReplica(uint32_t replica);

  Options options_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;  // pool + inline at back

  /// Health state + per-replica tallies, all guarded by one mutex: every
  /// access is an O(replicas) scan or a counter bump, microseconds
  /// against millisecond-scale scoring requests.
  mutable std::mutex health_mu_;
  std::vector<ReplicaHealth> health_;
  std::vector<uint64_t> replica_forwards_;
  std::vector<uint64_t> replica_failures_;

  std::atomic<bool> stop_{false};
  std::atomic<uint16_t> bound_port_{0};
  std::atomic<uint64_t> rr_cursor_{0};  // round-robin for user-less verbs
  std::atomic<uint64_t> requests_proxied_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> hedges_sent_{0};
  std::atomic<uint64_t> hedges_won_{0};
  std::atomic<uint64_t> no_healthy_503s_{0};
  std::atomic<uint64_t> rejected_verbs_{0};
  std::atomic<uint64_t> probes_sent_{0};
  std::atomic<uint64_t> probe_failures_{0};
  std::atomic<uint64_t> shed_{0};
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
};

}  // namespace ocular

#endif  // OCULAR_SERVING_FLEET_H_
