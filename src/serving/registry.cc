#include "serving/registry.h"

#include <utility>

namespace ocular {

namespace {

Result<std::shared_ptr<const ServableModel>> BuildServable(
    const std::string& name, const std::string& model_path,
    std::shared_ptr<const CsrMatrix> train) {
  OCULAR_ASSIGN_OR_RETURN(ModelStore store, ModelStore::Open(model_path));
  if (train != nullptr && train->num_cols() > store.num_items()) {
    return Status::InvalidArgument(
        "training matrix has more items than model '" + name + "'");
  }
  auto servable = std::make_shared<ServableModel>();
  servable->name = name;
  servable->model_path = model_path;
  servable->store = std::move(store);
  // Constructed after the store reaches its final address.
  servable->recommender = std::make_unique<StoreRecommender>(servable->store);
  servable->train = std::move(train);
  if (servable->store.meta().kind == BinaryModelKind::kOcularProbability) {
    const BinaryModelMeta& meta = servable->store.meta();
    OcularConfig config;
    config.use_biases = meta.use_biases;
    config.k = meta.k - (meta.use_biases ? 2 : 0);
    config.lambda = meta.lambda;
    config.variant = meta.relative_variant ? OcularVariant::kRelative
                                           : OcularVariant::kAbsolute;
    std::vector<double> popularity;
    if (servable->train != nullptr) {
      // Per-item interaction counts of the bound dataset — the natural
      // deterministic fallback ranking for signal-free histories.
      popularity.resize(servable->store.num_items(), 0.0);
      for (uint32_t c : servable->train->col_idx()) popularity[c] += 1.0;
    }
    auto ctx = MakeFoldInContext(
        servable->store.user_factors(), servable->store.item_factors(),
        servable->store.item_factors_t(), config, popularity);
    // Fold-in is an optional capability: a store whose meta cannot seed a
    // valid solver config still serves stored users.
    if (ctx.ok()) {
      servable->fold_in =
          std::make_unique<FoldInContext>(std::move(ctx).value());
    }
  }
  return std::shared_ptr<const ServableModel>(std::move(servable));
}

}  // namespace

Status ModelRegistry::Load(const std::string& name,
                           const std::string& model_path,
                           std::shared_ptr<const CsrMatrix> train) {
  if (name.empty()) return Status::InvalidArgument("model name is empty");
  OCULAR_ASSIGN_OR_RETURN(std::shared_ptr<const ServableModel> servable,
                          BuildServable(name, model_path, std::move(train)));
  std::lock_guard<std::mutex> lock(mu_);
  models_[name] = std::move(servable);
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

std::shared_ptr<const ServableModel> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

Status ModelRegistry::ReloadAll() {
  // Snapshot under the lock, re-open outside it (opens touch the
  // filesystem), publish each replacement atomically.
  std::vector<std::shared_ptr<const ServableModel>> current;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current.reserve(models_.size());
    for (const auto& [name, servable] : models_) current.push_back(servable);
  }
  Status first_error = Status::OK();
  for (const auto& old_model : current) {
    auto rebuilt = BuildServable(old_model->name, old_model->model_path,
                                 old_model->train);
    if (!rebuilt.ok()) {
      if (first_error.ok()) first_error = rebuilt.status();
      continue;  // keep serving the previous version
    }
    std::lock_guard<std::mutex> lock(mu_);
    models_[old_model->name] = std::move(rebuilt).value();
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }
  return first_error;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, servable] : models_) names.push_back(name);
  return names;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

}  // namespace ocular
