#include "serving/registry.h"

#include <algorithm>
#include <utility>

namespace ocular {

namespace {

/// Builds the fold-in serving context shared by both binding kinds.
/// `user_factors` feeds the expected-affinity popularity fallback when no
/// dataset is bound (a sharded binding passes the items file's empty user
/// view — its fallback ranking degrades to deterministic index order
/// unless a dataset supplies column degrees).
void AttachFoldIn(ServableModel* servable, ConstMatrixView user_factors,
                  ConstMatrixView items, ConstMatrixView items_t) {
  const BinaryModelMeta& meta = servable->meta();
  if (meta.kind != BinaryModelKind::kOcularProbability) return;
  OcularConfig config;
  config.use_biases = meta.use_biases;
  config.k = meta.k - (meta.use_biases ? 2 : 0);
  config.lambda = meta.lambda;
  config.variant = meta.relative_variant ? OcularVariant::kRelative
                                         : OcularVariant::kAbsolute;
  std::vector<double> popularity;
  if (servable->train != nullptr) {
    // Per-item interaction counts of the bound dataset — the natural
    // deterministic fallback ranking for signal-free histories.
    popularity.resize(servable->num_items(), 0.0);
    for (uint32_t c : servable->train->col_idx()) popularity[c] += 1.0;
  }
  auto ctx = MakeFoldInContext(user_factors, items, items_t, config,
                               popularity);
  // Fold-in is an optional capability: a store whose meta cannot seed a
  // valid solver config still serves stored users.
  if (ctx.ok()) {
    servable->fold_in = std::make_unique<FoldInContext>(std::move(ctx).value());
  }
}

Result<std::shared_ptr<const ServableModel>> BuildServable(
    const std::string& name, const std::string& model_path,
    std::shared_ptr<const CsrMatrix> train) {
  OCULAR_ASSIGN_OR_RETURN(ModelStore store, ModelStore::Open(model_path));
  if (train != nullptr && train->num_cols() > store.num_items()) {
    return Status::InvalidArgument(
        "training matrix has more items than model '" + name + "'");
  }
  auto servable = std::make_shared<ServableModel>();
  servable->name = name;
  servable->model_path = model_path;
  servable->store = std::move(store);
  // Constructed after the store reaches its final address.
  servable->recommender = std::make_unique<StoreRecommender>(servable->store);
  servable->train = std::move(train);
  AttachFoldIn(servable.get(), servable->store.user_factors(),
               servable->store.item_factors(),
               servable->store.item_factors_t());
  return std::shared_ptr<const ServableModel>(std::move(servable));
}

/// Builds a sharded servable from `manifest_path`, aliasing every member
/// store of `previous` (same file name, range and fingerprint, on-disk
/// bytes still matching) instead of remapping it. `*touched_out` counts
/// the members actually (re)opened — 0 means the set is byte-identical to
/// the previous generation and the caller may skip publishing.
Result<std::shared_ptr<const ServableModel>> BuildShardedServable(
    const std::string& name, const std::string& manifest_path,
    std::shared_ptr<const CsrMatrix> train,
    const std::shared_ptr<const ServableModel>& previous,
    uint32_t* touched_out) {
  OCULAR_ASSIGN_OR_RETURN(ShardSetManifest manifest,
                          LoadShardSetManifest(manifest_path));
  OCULAR_ASSIGN_OR_RETURN(ShardMap map, manifest.Map());
  if (train != nullptr && train->num_cols() > manifest.num_items) {
    return Status::InvalidArgument(
        "training matrix has more items than model '" + name + "'");
  }
  const ServableModel* prev =
      previous != nullptr && previous->sharded ? previous.get() : nullptr;
  uint32_t touched = 0;

  auto servable = std::make_shared<ServableModel>();
  servable->name = name;
  servable->model_path = manifest_path;
  servable->sharded = true;
  servable->train = std::move(train);

  // Every member is fingerprint-checked against the manifest even when
  // reused — a torn shardset (manifest republished, member write lost)
  // must refuse to load rather than serve a mix of generations.
  OCULAR_RETURN_IF_ERROR(CheckShardSetMember(
      manifest_path, manifest.items_file, manifest.items_fingerprint));
  if (prev != nullptr && prev->manifest.items_file == manifest.items_file &&
      prev->manifest.items_fingerprint == manifest.items_fingerprint) {
    servable->items_store = prev->items_store;
  } else {
    OCULAR_ASSIGN_OR_RETURN(
        ModelStore items,
        ModelStore::Open(ShardSetResolve(manifest_path, manifest.items_file)));
    OCULAR_RETURN_IF_ERROR(ValidateItemsHeader(manifest, items));
    servable->items_store =
        std::make_shared<const ModelStore>(std::move(items));
    ++touched;
  }

  servable->shard_stores.reserve(manifest.shards.size());
  for (size_t s = 0; s < manifest.shards.size(); ++s) {
    const ShardSetEntry& e = manifest.shards[s];
    OCULAR_RETURN_IF_ERROR(
        CheckShardSetMember(manifest_path, e.file, e.fingerprint));
    const bool reusable = prev != nullptr &&
                          s < prev->manifest.shards.size() &&
                          prev->manifest.shards[s].file == e.file &&
                          prev->manifest.shards[s].fingerprint ==
                              e.fingerprint &&
                          prev->manifest.shards[s].user_begin == e.user_begin &&
                          prev->manifest.shards[s].user_end == e.user_end;
    if (reusable) {
      servable->shard_stores.push_back(prev->shard_stores[s]);
      continue;
    }
    OCULAR_ASSIGN_OR_RETURN(
        ModelStore shard,
        ModelStore::Open(ShardSetResolve(manifest_path, e.file)));
    OCULAR_RETURN_IF_ERROR(ValidateShardHeader(manifest, s, shard));
    servable->shard_stores.push_back(
        std::make_shared<const ModelStore>(std::move(shard)));
    ++touched;
  }

  servable->manifest = std::move(manifest);
  servable->shard_map = std::move(map);
  std::vector<const ModelStore*> shard_ptrs;
  shard_ptrs.reserve(servable->shard_stores.size());
  for (const auto& s : servable->shard_stores) shard_ptrs.push_back(s.get());
  servable->recommender = std::make_unique<ShardedStoreRecommender>(
      servable->shard_map, *servable->items_store, std::move(shard_ptrs));
  AttachFoldIn(servable.get(), servable->items_store->user_factors(),
               servable->items_store->item_factors(),
               servable->items_store->item_factors_t());
  if (touched_out != nullptr) *touched_out = touched;
  return std::shared_ptr<const ServableModel>(std::move(servable));
}

}  // namespace

Status ModelRegistry::Load(const std::string& name,
                           const std::string& model_path,
                           std::shared_ptr<const CsrMatrix> train) {
  if (name.empty()) return Status::InvalidArgument("model name is empty");
  std::shared_ptr<const ServableModel> servable;
  uint32_t touched = 1;
  if (IsShardSetFile(model_path)) {
    OCULAR_ASSIGN_OR_RETURN(
        servable, BuildShardedServable(name, model_path, std::move(train),
                                       Get(name), &touched));
  } else {
    OCULAR_ASSIGN_OR_RETURN(servable,
                            BuildServable(name, model_path, std::move(train)));
  }
  std::lock_guard<std::mutex> lock(mu_);
  models_[name] = std::move(servable);
  // One generation step per member actually reopened — the per-shard
  // swap. An explicit Load always publishes (the caller may be binding a
  // new dataset), so even a byte-identical shardset steps once.
  generation_.fetch_add(std::max(touched, 1u), std::memory_order_acq_rel);
  return Status::OK();
}

std::shared_ptr<const ServableModel> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

Status ModelRegistry::ReloadAll() {
  // Snapshot under the lock, re-open outside it (opens touch the
  // filesystem), publish each replacement atomically.
  std::vector<std::shared_ptr<const ServableModel>> current;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current.reserve(models_.size());
    for (const auto& [name, servable] : models_) current.push_back(servable);
  }
  Status first_error = Status::OK();
  for (const auto& old_model : current) {
    uint32_t touched = 1;
    auto rebuilt =
        old_model->sharded
            ? BuildShardedServable(old_model->name, old_model->model_path,
                                   old_model->train, old_model, &touched)
            : BuildServable(old_model->name, old_model->model_path,
                            old_model->train);
    if (!rebuilt.ok()) {
      if (first_error.ok()) first_error = rebuilt.status();
      continue;  // keep serving the previous version
    }
    if (old_model->sharded && touched == 0) {
      // Every member is byte-identical to what is already serving: the
      // reload is a no-op for this name, so leave the generation alone
      // and spare the workers a lease refresh.
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    models_[old_model->name] = std::move(rebuilt).value();
    generation_.fetch_add(touched, std::memory_order_acq_rel);
  }
  return first_error;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, servable] : models_) names.push_back(name);
  return names;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

}  // namespace ocular
