#ifndef OCULAR_SERVING_RENDER_H_
#define OCULAR_SERVING_RENDER_H_

#include <span>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/coclusters.h"
#include "core/ocular_model.h"
#include "eval/recommender.h"
#include "sparse/csr.h"

namespace ocular {

/// Appends `"items":[{"item":..,"score":..},...]` to an open JSON object —
/// the one wire rendering of a ranked list, shared by every reply that
/// carries recommendations (stored-user and fold-in serving) so clients
/// parse one shape and byte-for-byte reply comparisons stay meaningful.
void WriteRankedItems(JsonWriter* w, std::span<const ScoredItem> items);

/// Options for the ASCII matrix renderer.
struct RenderOptions {
  /// Maximum users (rows) / items (columns) rendered; larger matrices are
  /// truncated with an ellipsis marker.
  uint32_t max_users = 40;
  uint32_t max_items = 60;
  /// Probability above which an unknown cell is drawn as a predicted
  /// recommendation.
  double highlight_threshold = 0.5;
};

/// Renders the interaction matrix in the style of the paper's Figure 1:
/// '#' = positive example, 'o' = unknown cell the model scores above the
/// highlight threshold (a recommendation hole inside a co-cluster),
/// '.' = unknown. Pass nullptr for `model` to draw the raw matrix only.
std::string RenderInteractionMatrix(const CsrMatrix& interactions,
                                    const OcularModel* model,
                                    const RenderOptions& options = {});

/// Renders one co-cluster as the block submatrix it spans, with member
/// ids on the axes — the visual evidence a seller sees next to the
/// rationale text.
std::string RenderCoClusterBlock(const CoCluster& cluster,
                                 const CsrMatrix& interactions,
                                 const RenderOptions& options = {});

}  // namespace ocular

#endif  // OCULAR_SERVING_RENDER_H_
