#include "serving/render.h"

#include <algorithm>
#include <sstream>

namespace ocular {

namespace {

char CellGlyph(const CsrMatrix& interactions, const OcularModel* model,
               uint32_t u, uint32_t i, double highlight) {
  if (interactions.HasEntry(u, i)) return '#';
  if (model != nullptr && model->Probability(u, i) >= highlight) return 'o';
  return '.';
}

}  // namespace

void WriteRankedItems(JsonWriter* w, std::span<const ScoredItem> items) {
  w->Key("items");
  w->BeginArray();
  for (const ScoredItem& si : items) {
    w->BeginObject();
    w->Key("item");
    w->UInt(si.item);
    w->Key("score");
    w->Double(si.score);
    w->EndObject();
  }
  w->EndArray();
}

std::string RenderInteractionMatrix(const CsrMatrix& interactions,
                                    const OcularModel* model,
                                    const RenderOptions& options) {
  const uint32_t rows =
      std::min(interactions.num_rows(), options.max_users);
  const uint32_t cols =
      std::min(interactions.num_cols(), options.max_items);
  std::ostringstream out;
  out << "     ";
  for (uint32_t i = 0; i < cols; ++i) out << (i % 10);
  if (cols < interactions.num_cols()) out << " ...";
  out << "\n";
  for (uint32_t u = 0; u < rows; ++u) {
    char row_id[16];
    std::snprintf(row_id, sizeof(row_id), "%4u ", u);
    out << row_id;
    for (uint32_t i = 0; i < cols; ++i) {
      out << CellGlyph(interactions, model, u, i,
                       options.highlight_threshold);
    }
    out << "\n";
  }
  if (rows < interactions.num_rows()) out << "  ...\n";
  out << "('#' positive, 'o' predicted recommendation, '.' unknown)\n";
  return out.str();
}

std::string RenderCoClusterBlock(const CoCluster& cluster,
                                 const CsrMatrix& interactions,
                                 const RenderOptions& options) {
  std::ostringstream out;
  out << "co-cluster " << cluster.index << " (" << cluster.users.size()
      << " users x " << cluster.items.size() << " items)\n";
  const size_t rows =
      std::min<size_t>(cluster.users.size(), options.max_users);
  const size_t cols =
      std::min<size_t>(cluster.items.size(), options.max_items);
  // Header: item ids, vertical-ish (last two digits).
  out << "        ";
  for (size_t c = 0; c < cols; ++c) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%3u", cluster.items[c] % 1000);
    out << buf;
  }
  if (cols < cluster.items.size()) out << " ...";
  out << "\n";
  for (size_t r = 0; r < rows; ++r) {
    const uint32_t u = cluster.users[r];
    char row_id[16];
    std::snprintf(row_id, sizeof(row_id), "%7u ", u);
    out << row_id;
    for (size_t c = 0; c < cols; ++c) {
      out << (interactions.HasEntry(u, cluster.items[c]) ? "  #" : "  .");
    }
    out << "\n";
  }
  if (rows < cluster.users.size()) out << "    ...\n";
  return out.str();
}

}  // namespace ocular
