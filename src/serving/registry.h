#ifndef OCULAR_SERVING_REGISTRY_H_
#define OCULAR_SERVING_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/fold_in.h"
#include "core/model_shard.h"
#include "serving/sharded_store_recommender.h"
#include "serving/store_recommender.h"
#include "sparse/csr.h"

namespace ocular {

/// \brief One resident servable model: an mmapped ModelStore (or, for a
/// `*.shardset` binding, a set of them), its zero-copy recommender, and
/// the optional training matrix whose rows are excluded from that user's
/// recommendations (the Section IV-C "recommend unknowns only" rule).
///
/// Immutable once published: a reload builds a NEW ServableModel and swaps
/// the registry pointer, so requests already holding a shared_ptr keep
/// serving the old mapping until they drain — at which point the last
/// reference unmaps it. For a sharded binding the member stores are
/// shared_ptrs, and a rebuild ALIASES every untouched member from the
/// previous generation instead of remapping it — that is the per-shard
/// generation swap: republishing one shard costs one mmap, not N.
struct ServableModel {
  /// Registry key the model is served under.
  std::string name;
  /// File the binding was opened from (re-opened on reload): an `.oclr`
  /// store, or a `.shardset` manifest when `sharded` is true.
  std::string model_path;
  /// The open mapping (monolithic bindings only; not open when sharded).
  ModelStore store;
  /// True when `model_path` is a shardset manifest and the sharded
  /// members below are live instead of `store`.
  bool sharded = false;
  /// Parsed manifest of the bound shardset (sharded only).
  ShardSetManifest manifest;
  /// user → shard routing of the bound shardset (sharded only).
  ShardMap shard_map;
  /// Shared items file: item factors + serving layout, mapped once for
  /// all shards (sharded only).
  std::shared_ptr<const ModelStore> items_store;
  /// Per-shard user-factor stores, aligned with manifest.shards. Entries
  /// are shared with the previous generation when their fingerprint did
  /// not change (sharded only).
  std::vector<std::shared_ptr<const ModelStore>> shard_stores;
  /// Zero-copy recommender over the store(s): StoreRecommender for a
  /// monolithic binding, ShardedStoreRecommender for a shardset.
  /// Held by pointer so the views stay valid when ServableModel moves.
  std::unique_ptr<Recommender> recommender;
  /// Per-user exclusion rows (nullptr = no exclusions). Shared with the
  /// reloaded generations of the model — only the factor file is re-opened
  /// on reload, the interaction history is not re-read.
  std::shared_ptr<const CsrMatrix> train;
  /// Fold-in serving state over the store's mmapped factor views, built
  /// once per published generation (nullptr for stores that are not
  /// OCuLaR probability models — history requests against those fail
  /// with FailedPrecondition). The popularity fallback ranks by `train`
  /// column degrees when a dataset is bound, else by expected affinity.
  /// Declared after `store` so its views die before the mapping does.
  std::unique_ptr<FoldInContext> fold_in;

  /// \brief The exclusion row for `u` (empty without a matrix or for users
  /// beyond it).
  std::span<const uint32_t> ExcludeRow(uint32_t u) const {
    if (train == nullptr || u >= train->num_rows()) return {};
    return train->Row(u);
  }

  // Binding-agnostic accessors: the daemon and CLI read model shape
  // through these so one request path serves both monolithic stores and
  // shardsets.

  /// Users served by this binding (all shards combined when sharded).
  uint32_t num_users() const {
    return sharded ? shard_map.num_users() : store.num_users();
  }
  /// Items of the (shared) item factors.
  uint32_t num_items() const {
    return sharded ? items_store->num_items() : store.num_items();
  }
  /// Factor dimension.
  uint32_t k() const { return sharded ? items_store->k() : store.k(); }
  /// Header metadata (the shared items file's header when sharded).
  const BinaryModelMeta& meta() const {
    return sharded ? items_store->meta() : store.meta();
  }
  /// Bytes mapped across every member store.
  size_t mapped_bytes() const {
    if (!sharded) return store.mapped_bytes();
    size_t total = items_store->mapped_bytes();
    for (const auto& s : shard_stores) total += s->mapped_bytes();
    return total;
  }
  /// Shards of the binding (1 for a monolithic store).
  uint32_t num_shards() const { return sharded ? shard_map.num_shards() : 1; }
  /// The shard serving `u` (0 for a monolithic store). Precondition:
  /// u < num_users().
  uint32_t shard_of(uint32_t u) const {
    return sharded ? shard_map.shard_of(u) : 0;
  }
};

/// \brief Named collection of servable models with atomic hot-reload —
/// the model-management half of the serving daemon (serving/daemon.h).
///
/// Readers call Get() and hold the returned shared_ptr for the duration of
/// one request; Load()/ReloadAll() publish replacement models by swapping
/// the map entry under a mutex. No request is ever served from a
/// half-loaded model, and an old model's mapping is retired exactly when
/// its last in-flight request completes (shared_ptr drain). All methods
/// are thread-safe.
class ModelRegistry {
 public:
  /// \brief Opens `model_path` — a binary v2 store, or a `*.shardset`
  /// manifest (sniffed via IsShardSetFile) — and publishes it as `name`,
  /// replacing any previous model of that name. `train` supplies per-user
  /// exclusion rows (pass nullptr for none). On failure the previous model
  /// (if any) keeps serving. Re-loading a shardset name reuses every
  /// member store whose manifest fingerprint is unchanged, so publishing
  /// one rewritten shard remaps only that shard; generation() advances by
  /// the number of members actually reopened.
  Status Load(const std::string& name, const std::string& model_path,
              std::shared_ptr<const CsrMatrix> train = nullptr);

  /// \brief The current model for `name`, or nullptr when absent. The
  /// returned pointer pins the model (and its mapping) until released.
  std::shared_ptr<const ServableModel> Get(const std::string& name) const;

  /// \brief Re-opens every model from its recorded path and swaps each
  /// atomically — the SIGHUP hot-reload. A model whose file no longer
  /// opens keeps its previous version; the first such error is returned
  /// (after attempting every model). Sharded bindings reload
  /// incrementally: members whose manifest fingerprint is unchanged are
  /// shared with the outgoing generation, and a shardset with NO changed
  /// members is left untouched entirely (no swap, no generation bump).
  Status ReloadAll();

  /// \brief Registered model names, sorted.
  std::vector<std::string> Names() const;

  /// \brief Number of registered models.
  size_t size() const;

  /// \brief Monotonic publication counter, bumped on every successful
  /// Load() and on each model swapped by ReloadAll(). Serving workers
  /// cache their Get() leases and re-resolve only when this moves, so
  /// the steady-state request path never touches the registry mutex
  /// while hot reloads still propagate promptly (each worker drains onto
  /// the new generation at its next request).
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ServableModel>> models_;
  std::atomic<uint64_t> generation_{1};
};

}  // namespace ocular

#endif  // OCULAR_SERVING_REGISTRY_H_
