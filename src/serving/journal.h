#ifndef OCULAR_SERVING_JOURNAL_H_
#define OCULAR_SERVING_JOURNAL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace ocular {

/// \file
/// \brief The update journal: a durable write-ahead log of `update` verbs.
///
/// The daemon's in-place update pipeline (serving/daemon.h, HandleUpdate)
/// acks an update only after the retrained artifact is renamed over the
/// model file. Two crash windows would still lose state without a log:
///
///   1. Crash between journal-append and artifact rename: the retrain
///      never published. The journal's trailing *pending* record carries
///      everything needed to replay it deterministically (adds, dims,
///      sweeps, seed) plus the fingerprint of the artifact it was based
///      on, so recovery can tell "replay me" from "I already published".
///   2. Restart at any later point: the `--datasets` CSV on disk is the
///      ORIGINAL training snapshot — without the journal, every applied
///      update's interaction deltas would vanish from the exclusion rows
///      and from future updates' training base. The journal doubles as
///      the durable delta log: recovery re-merges every committed
///      record's adds into the bound training matrix before serving.
///
/// On-disk format (`<model>.update.journal`): a sequence of length-
/// prefixed, checksummed records, appended with O_APPEND + fsync:
///
///   [u32 type][u32 payload_len][u64 fnv1a64(payload)][payload]
///
/// kUpdate payload: u64 base_fingerprint, u64 seed, u32 num_users,
/// u32 num_items, u32 sweeps, u32 reserved, u64 n, then n x (u32 user,
/// u32 item). kCommit/kAbort carry no payload. Integers are host-endian:
/// the journal is a same-machine crash-recovery artifact, not an
/// interchange format. A torn or corrupt tail (short header, short
/// payload, checksum mismatch) ends the readable prefix — everything
/// before it is trusted, everything after discarded.
///
/// Lifecycle discipline: each kUpdate is closed by exactly one kCommit
/// (artifact renamed — the adds are law) or kAbort (clean failure before
/// the rename — the adds never happened). Only a crash leaves a trailing
/// pending record; RequestServer::RecoverJournal resolves it by
/// fingerprint on the next start. The journal must stay next to the model
/// file for as long as the original dataset snapshot is the serving base;
/// deleting it forgets every applied update's deltas on the next restart
/// (see docs/OPERATIONS.md, "Failure modes & recovery").

/// \brief One `update` verb as journaled: the full recipe to re-run it.
struct UpdateRecord {
  /// fs::FileFingerprint of the artifact this update retrained FROM,
  /// taken before the retrain. Recovery compares it against the live
  /// artifact to decide replay (equal: the rename never happened) vs
  /// heal (different: the rename published, only the commit is missing).
  uint64_t base_fingerprint = 0;
  /// Expansion seed of the request (0 = shape-derived stream).
  uint64_t seed = 0;
  /// Final (post-growth) training dimensions the update resolved to.
  uint32_t num_users = 0;
  uint32_t num_items = 0;
  /// Refresh sweeps of the warm-start retrain.
  uint32_t sweeps = 0;
  /// The interaction deltas.
  std::vector<std::pair<uint32_t, uint32_t>> adds;
};

/// \brief Appender + torn-tail-tolerant reader for the update journal.
/// Appends are serialized by the caller (the daemon's update mutex); the
/// reader is a static, whole-file pass used only at recovery time.
class UpdateJournal {
 public:
  enum class RecordType : uint32_t {
    kUpdate = 1,  ///< an update was received and is about to retrain
    kCommit = 2,  ///< its artifact was renamed into place — adds are law
    kAbort = 3,   ///< it failed cleanly before the rename — adds are void
  };

  /// \brief A decoded journal record. `update` is meaningful only for
  /// kUpdate records.
  struct Record {
    RecordType type = RecordType::kUpdate;
    UpdateRecord update;
  };

  /// \brief The journal interpreted for recovery: which updates are law,
  /// and whether a trailing pending record needs fingerprint resolution.
  struct Plan {
    /// Committed updates in append order (includes pending records that
    /// LoadPlan could already prove published — none; that resolution
    /// needs the live artifact and is RecoverJournal's job).
    std::vector<UpdateRecord> applied;
    /// Trailing kUpdate with no kCommit/kAbort — a crash window.
    bool has_pending = false;
    UpdateRecord pending;
    /// kAbort groups seen (informational).
    uint64_t aborted = 0;
    /// True when the file ended in a torn/corrupt record; the readable
    /// prefix above is still trusted.
    bool torn_tail = false;
  };

  UpdateJournal() = default;
  ~UpdateJournal();
  UpdateJournal(UpdateJournal&& other) noexcept;
  UpdateJournal& operator=(UpdateJournal&& other) noexcept;
  UpdateJournal(const UpdateJournal&) = delete;
  UpdateJournal& operator=(const UpdateJournal&) = delete;

  /// \brief The journal path for a model artifact path.
  static std::string PathFor(const std::string& model_path) {
    return model_path + ".update.journal";
  }

  /// \brief Opens (creating if absent) `path` for appending.
  Status Open(const std::string& path);
  bool is_open() const { return fd_ >= 0; }
  void Close();

  /// \brief Appends one record and fsyncs the journal — the record is
  /// durable when this returns OK. Fault points "journal.append" (before
  /// the write: nothing lands) and "journal.fsync" (after the write:
  /// the record may or may not survive a crash — callers must fail the
  /// update, and recovery treats a surviving record like any pending
  /// one).
  Status AppendUpdate(const UpdateRecord& record);
  Status AppendCommit();
  Status AppendAbort();

  /// \brief Reads every well-formed record from `path` in order, stopping
  /// at (and discarding) a torn/corrupt tail; `*torn_tail` reports whether
  /// one was found. A missing file is an empty journal, not an error.
  static Result<std::vector<Record>> ReadAll(const std::string& path,
                                             bool* torn_tail = nullptr);

  /// \brief ReadAll + lifecycle interpretation (see Plan).
  static Result<Plan> LoadPlan(const std::string& path);

 private:
  Status AppendFrame(RecordType type, const std::string& payload);

  int fd_ = -1;
  std::string path_;
};

}  // namespace ocular

#endif  // OCULAR_SERVING_JOURNAL_H_
