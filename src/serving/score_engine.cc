#include "serving/score_engine.h"

#include <algorithm>
#include <limits>

namespace ocular {

namespace {

/// Maps the public min_score semantics (0 = unfiltered) onto the selection
/// threshold of the topm:: helpers.
double SelectionThreshold(const ServeOptions& options) {
  return options.min_score > 0.0
             ? options.min_score
             : -std::numeric_limits<double>::infinity();
}

}  // namespace

Result<CoClusterCandidateIndex> BuildCoClusterCandidateIndex(
    const OcularModel& model, double threshold, uint32_t max_dims) {
  if (threshold <= 0.0) {
    return Status::InvalidArgument("candidate threshold must be positive");
  }
  const uint32_t dims =
      max_dims == 0 ? model.k() : std::min(max_dims, model.k());
  CoClusterCandidateIndex index;
  index.threshold = threshold;
  index.items_per_dim.resize(dims);
  index.dims_per_user.resize(model.num_users());
  const DenseMatrix& fi = model.item_factors();
  for (uint32_t i = 0; i < fi.rows(); ++i) {
    auto row = fi.Row(i);
    for (uint32_t c = 0; c < dims; ++c) {
      if (row[c] > threshold) index.items_per_dim[c].push_back(i);
    }
  }
  const DenseMatrix& fu = model.user_factors();
  for (uint32_t u = 0; u < fu.rows(); ++u) {
    auto row = fu.Row(u);
    size_t gathered = 0;
    for (uint32_t c = 0; c < dims; ++c) {
      if (row[c] > threshold) {
        index.dims_per_user[u].push_back(c);
        gathered += index.items_per_dim[c].size();
      }
    }
    index.max_candidate_items = std::max(index.max_candidate_items, gathered);
  }
  return index;
}

std::span<const ScoredItem> ServeTopM(const Recommender& rec, uint32_t u,
                                      std::span<const uint32_t> exclude_sorted,
                                      const ServeOptions& options,
                                      ServeWorkspace* ws) {
  RecommendBlockedInto(rec, u, options.m, exclude_sorted,
                       SelectionThreshold(options), options.block_items,
                       &ws->tile, &ws->selection);
  return ws->selection;
}

std::span<const ScoredItem> ServeTopMCandidates(
    const Recommender& rec, uint32_t u,
    std::span<const uint32_t> exclude_sorted, const ServeOptions& options,
    const CoClusterCandidateIndex& index, ServeWorkspace* ws) {
  // Gather the union of the user's co-clusters' items. std::sort and the
  // in-place dedup stay within the reserved capacity, so the gathering is
  // allocation-free in steady state.
  ws->candidates.clear();
  for (uint32_t c : index.dims_per_user[u]) {
    const std::vector<uint32_t>& items = index.items_per_dim[c];
    ws->candidates.insert(ws->candidates.end(), items.begin(), items.end());
  }
  std::sort(ws->candidates.begin(), ws->candidates.end());
  ws->candidates.erase(
      std::unique(ws->candidates.begin(), ws->candidates.end()),
      ws->candidates.end());

  // Candidate sets are small, so a plain bounded heap does the selection.
  const double threshold = SelectionThreshold(options);
  ws->selection.clear();
  ws->selection.reserve(topm::SelectionCapacity(options.m));
  size_t ex = 0;
  for (uint32_t i : ws->candidates) {
    while (ex < exclude_sorted.size() && exclude_sorted[ex] < i) ++ex;
    if (ex < exclude_sorted.size() && exclude_sorted[ex] == i) continue;
    topm::Consider(ws->selection, options.m, threshold,
                   ScoredItem{i, rec.Score(u, i)});
  }
  topm::SortBestFirst(ws->selection);
  return ws->selection;
}

Result<double> CandidateOverlapAtM(const Recommender& rec,
                                   const CsrMatrix& train,
                                   const CoClusterCandidateIndex& index,
                                   const ServeOptions& options) {
  if (train.num_rows() != rec.num_users() ||
      train.num_cols() != rec.num_items()) {
    return Status::InvalidArgument(
        "training matrix shape does not match the recommender");
  }
  if (index.dims_per_user.size() != rec.num_users()) {
    return Status::InvalidArgument(
        "candidate index built for a different model");
  }
  ServeWorkspace exact_ws;
  ServeWorkspace cand_ws;
  exact_ws.Reserve(options.m, options.block_items);
  cand_ws.Reserve(options.m, options.block_items, index.max_candidate_items);
  std::vector<uint32_t> exact_items;
  std::vector<uint32_t> cand_items;
  double overlap_sum = 0.0;
  uint32_t users = 0;
  for (uint32_t u = 0; u < rec.num_users(); ++u) {
    auto exact = ServeTopM(rec, u, train.Row(u), options, &exact_ws);
    if (exact.empty()) continue;
    auto cand =
        ServeTopMCandidates(rec, u, train.Row(u), options, index, &cand_ws);
    exact_items.clear();
    cand_items.clear();
    for (const ScoredItem& si : exact) exact_items.push_back(si.item);
    for (const ScoredItem& si : cand) cand_items.push_back(si.item);
    std::sort(exact_items.begin(), exact_items.end());
    std::sort(cand_items.begin(), cand_items.end());
    std::vector<uint32_t> both;
    std::set_intersection(exact_items.begin(), exact_items.end(),
                          cand_items.begin(), cand_items.end(),
                          std::back_inserter(both));
    overlap_sum += static_cast<double>(both.size()) /
                   static_cast<double>(exact_items.size());
    ++users;
  }
  if (users == 0) {
    return Status::FailedPrecondition("no user produced a non-empty ranking");
  }
  return overlap_sum / users;
}

}  // namespace ocular
