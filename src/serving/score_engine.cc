#include "serving/score_engine.h"

#include <algorithm>
#include <limits>

namespace ocular {

namespace {

/// Maps the public min_score semantics (0 = unfiltered) onto the selection
/// threshold of the topm:: helpers.
double SelectionThreshold(const ServeOptions& options) {
  return options.min_score > 0.0
             ? options.min_score
             : -std::numeric_limits<double>::infinity();
}

}  // namespace

namespace {

/// Per-row membership rule: STRICTLY above the absolute threshold (the
/// historical `>` semantics of the threshold-only overload), or at/above
/// the relative floor `relative * row_max` (`>=`, so a row's maximal
/// entry always admits itself at relative = 1). Returns the pair
/// (absolute cutoff or +inf, relative cutoff or +inf); a row whose
/// largest entry is ~0 belongs nowhere under either rule.
struct MembershipCutoffs {
  double absolute = std::numeric_limits<double>::infinity();
  double relative = std::numeric_limits<double>::infinity();

  bool Admits(double v) const { return v > absolute || v >= relative; }
};

MembershipCutoffs RowCutoffs(std::span<const double> row,
                             const CandidateIndexOptions& options) {
  MembershipCutoffs cut;
  if (options.threshold > 0.0) cut.absolute = options.threshold;
  if (options.relative > 0.0) {
    double row_max = 0.0;
    for (double v : row) row_max = std::max(row_max, v);
    if (row_max > 0.0) cut.relative = options.relative * row_max;
  }
  return cut;
}

}  // namespace

Result<CoClusterCandidateIndex> BuildCoClusterCandidateIndex(
    const OcularModel& model, const CandidateIndexOptions& options) {
  if (options.threshold <= 0.0 && options.relative <= 0.0) {
    return Status::InvalidArgument(
        "candidate membership needs a positive absolute threshold or a "
        "relative fraction");
  }
  if (options.relative < 0.0 || options.relative > 1.0) {
    return Status::InvalidArgument(
        "candidate relative fraction must be in (0, 1]");
  }
  const uint32_t dims = options.max_dims == 0
                            ? model.k()
                            : std::min(options.max_dims, model.k());
  CoClusterCandidateIndex index;
  index.options = options;
  index.items_per_dim.resize(dims);
  index.dims_per_user.resize(model.num_users());
  const DenseMatrix& fi = model.item_factors();
  for (uint32_t i = 0; i < fi.rows(); ++i) {
    auto row = fi.Row(i);
    const MembershipCutoffs cut = RowCutoffs(row.subspan(0, dims), options);
    for (uint32_t c = 0; c < dims; ++c) {
      if (cut.Admits(row[c])) index.items_per_dim[c].push_back(i);
    }
  }
  const DenseMatrix& fu = model.user_factors();
  for (uint32_t u = 0; u < fu.rows(); ++u) {
    auto row = fu.Row(u);
    const MembershipCutoffs cut = RowCutoffs(row.subspan(0, dims), options);
    size_t gathered = 0;
    for (uint32_t c = 0; c < dims; ++c) {
      if (cut.Admits(row[c])) {
        index.dims_per_user[u].push_back(c);
        gathered += index.items_per_dim[c].size();
      }
    }
    index.max_candidate_items = std::max(index.max_candidate_items, gathered);
  }
  return index;
}

Result<CoClusterCandidateIndex> BuildCoClusterCandidateIndex(
    const OcularModel& model, double threshold, uint32_t max_dims) {
  CandidateIndexOptions options;
  options.threshold = threshold;
  options.max_dims = max_dims;
  return BuildCoClusterCandidateIndex(model, options);
}

std::span<const ScoredItem> ServeTopM(const Recommender& rec, uint32_t u,
                                      std::span<const uint32_t> exclude_sorted,
                                      const ServeOptions& options,
                                      ServeWorkspace* ws) {
  RecommendBlockedInto(rec, u, options.m, exclude_sorted,
                       SelectionThreshold(options), options.block_items,
                       &ws->tile, &ws->selection);
  return ws->selection;
}

std::span<const ScoredItem> ServeTopMCandidates(
    const Recommender& rec, uint32_t u,
    std::span<const uint32_t> exclude_sorted, const ServeOptions& options,
    const CoClusterCandidateIndex& index, ServeWorkspace* ws) {
  // Gather the union of the user's co-clusters' items. std::sort and the
  // in-place dedup stay within the reserved capacity, so the gathering is
  // allocation-free in steady state.
  ws->candidates.clear();
  for (uint32_t c : index.dims_per_user[u]) {
    const std::vector<uint32_t>& items = index.items_per_dim[c];
    ws->candidates.insert(ws->candidates.end(), items.begin(), items.end());
  }
  std::sort(ws->candidates.begin(), ws->candidates.end());
  ws->candidates.erase(
      std::unique(ws->candidates.begin(), ws->candidates.end()),
      ws->candidates.end());

  // Candidate sets are small, so a plain bounded heap does the selection.
  const double threshold = SelectionThreshold(options);
  ws->selection.clear();
  ws->selection.reserve(topm::SelectionCapacity(options.m));
  size_t ex = 0;
  for (uint32_t i : ws->candidates) {
    while (ex < exclude_sorted.size() && exclude_sorted[ex] < i) ++ex;
    if (ex < exclude_sorted.size() && exclude_sorted[ex] == i) continue;
    topm::Consider(ws->selection, options.m, threshold,
                   ScoredItem{i, rec.Score(u, i)});
  }
  topm::SortBestFirst(ws->selection);
  return ws->selection;
}

Result<double> CandidateOverlapAtM(const Recommender& rec,
                                   const CsrMatrix& train,
                                   const CoClusterCandidateIndex& index,
                                   const ServeOptions& options) {
  if (train.num_rows() != rec.num_users() ||
      train.num_cols() != rec.num_items()) {
    return Status::InvalidArgument(
        "training matrix shape does not match the recommender");
  }
  if (index.dims_per_user.size() != rec.num_users()) {
    return Status::InvalidArgument(
        "candidate index built for a different model");
  }
  ServeWorkspace exact_ws;
  ServeWorkspace cand_ws;
  exact_ws.Reserve(options.m, options.block_items);
  cand_ws.Reserve(options.m, options.block_items, index.max_candidate_items);
  std::vector<uint32_t> exact_items;
  std::vector<uint32_t> cand_items;
  double overlap_sum = 0.0;
  uint32_t users = 0;
  for (uint32_t u = 0; u < rec.num_users(); ++u) {
    auto exact = ServeTopM(rec, u, train.Row(u), options, &exact_ws);
    if (exact.empty()) continue;
    auto cand =
        ServeTopMCandidates(rec, u, train.Row(u), options, index, &cand_ws);
    exact_items.clear();
    cand_items.clear();
    for (const ScoredItem& si : exact) exact_items.push_back(si.item);
    for (const ScoredItem& si : cand) cand_items.push_back(si.item);
    std::sort(exact_items.begin(), exact_items.end());
    std::sort(cand_items.begin(), cand_items.end());
    std::vector<uint32_t> both;
    std::set_intersection(exact_items.begin(), exact_items.end(),
                          cand_items.begin(), cand_items.end(),
                          std::back_inserter(both));
    overlap_sum += static_cast<double>(both.size()) /
                   static_cast<double>(exact_items.size());
    ++users;
  }
  if (users == 0) {
    return Status::FailedPrecondition("no user produced a non-empty ranking");
  }
  return overlap_sum / users;
}

}  // namespace ocular
