#ifndef OCULAR_SERVING_LOADGEN_H_
#define OCULAR_SERVING_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "eval/recommender.h"

namespace ocular {

/// \file
/// \brief Multi-connection loopback load generator for the serving
/// daemon — the client side of bench/bench_daemon_hot.cpp and the
/// `ocular_cli loadtest` subcommand. Drives C concurrent TCP clients,
/// each pipelining batches of `recommend` requests over its own
/// persistent connection, and reports throughput plus per-request
/// latency percentiles.

/// \brief Load shape and target of one generator run.
struct LoadGenOptions {
  /// Daemon port on 127.0.0.1 (required, nonzero).
  uint16_t port = 0;
  /// Concurrent client connections.
  uint32_t clients = 8;
  /// Requests each client sends over its connection.
  uint64_t requests_per_client = 1000;
  /// Requests written back-to-back before reading the replies (request
  /// pipelining depth; 1 = strict request/response ping-pong). Keep the
  /// batch well under the kernel socket buffers (the CLI caps this at
  /// 512): the client writes a whole batch before reading, so a batch
  /// that cannot be buffered deadlocks against a server blocked on its
  /// own replies.
  uint32_t pipeline = 16;
  /// Top-M requested per call.
  uint32_t m = 50;
  /// Users are cycled round-robin over [0, num_users), offset per client
  /// so concurrent clients hit different rows.
  uint32_t num_users = 1;
  /// Model name sent with every request.
  std::string model = "default";
  /// Mixed-verb traffic: every `history_every`-th request of a client
  /// (counting from its first; 0 = never) carries a "history" array
  /// instead of "user" — the fold-in path of a live catalog. Generated
  /// histories are deterministic (LoadGenHistory), intentionally unsorted
  /// with possible duplicates, so the run also exercises the daemon's
  /// sanitization.
  uint32_t history_every = 0;
  /// Item ids per generated history.
  uint32_t history_len = 8;
  /// Catalog size generated histories draw from (required nonzero when
  /// history_every > 0).
  uint32_t num_items = 0;
  /// Zipf-style burst skew: 0 (default) cycles users round-robin; > 0
  /// draws each request's user as floor(num_users * u^zipf_skew) with a
  /// deterministic per-request u ∈ [0,1) — a few hot users absorb most
  /// of the traffic (skew 3 sends ~half the requests to the hottest
  /// ~8% of rows), the bursty half of an idle-flood workload.
  double zipf_skew = 0.0;
  /// Honor 503 shed replies: close, back off (the reply's retry_after_ms
  /// as base delay, doubled per attempt, capped, plus deterministic
  /// jitter so a shed fleet does not reconnect in lockstep), reconnect,
  /// and resend the outstanding batch. Off turns a shed into a run
  /// failure (the pre-backoff behavior, useful when a test wants to
  /// observe the raw 503).
  bool retry_shed = true;
  /// Reconnect attempts per batch before the run fails anyway.
  uint32_t max_shed_retries = 8;
  /// Fleet mode: treat a connection that dies mid-batch (EOF, reset,
  /// refused reconnect) the way a 503 shed is treated — roll the
  /// outstanding batch back, back off with the shared retry discipline
  /// (serving/retry.h), reconnect, and resend — instead of failing the
  /// run. This is what lets the generator ride through a proxy or
  /// replica restarting underneath it; reconnects are counted in
  /// LoadGenResult::reconnects. Off (the default) keeps the strict
  /// single-daemon contract where a dropped connection fails the run.
  bool reconnect_on_close = false;
  /// Optional per-reply hook (request user, raw reply line, still
  /// newline-free). Called from client threads — must be thread-safe.
  /// Leave unset for pure throughput measurement. History requests go to
  /// on_history_reply instead.
  std::function<void(uint32_t user, const std::string& line)> on_reply;
  /// Optional per-reply hook for history requests: the ids exactly as
  /// sent (unsanitized) and the raw reply line. Thread-safety rules of
  /// on_reply apply.
  std::function<void(std::span<const uint32_t> history,
                     const std::string& line)>
      on_history_reply;
};

/// \brief What a load-generator run measured.
struct LoadGenResult {
  /// Requests sent (= replies received; the run fails otherwise).
  uint64_t requests = 0;
  /// Replies that began with {"ok":true.
  uint64_t ok_replies = 0;
  /// Replies that did not (request errors, shed connections).
  uint64_t error_replies = 0;
  /// 503 shed replies absorbed by reconnect-with-backoff (not counted in
  /// error_replies: every shed batch was eventually answered).
  uint64_t shed_retries = 0;
  /// Mid-batch connection losses absorbed by reconnect-and-resend
  /// (reconnect_on_close mode only; like shed_retries, not errors —
  /// every affected batch was eventually answered).
  uint64_t reconnects = 0;
  /// Wall clock from first byte sent to last reply read.
  double seconds = 0.0;
  /// requests / seconds.
  double requests_per_second = 0.0;
  /// Client-observed median per-request latency, microseconds. A
  /// pipelined request's latency runs from its batch's write to its own
  /// reply, so depths > 1 report queueing delay too — that is the
  /// service time a real pipelining client experiences.
  double p50_latency_us = 0.0;
  /// Client-observed 99th-percentile latency, microseconds (same
  /// batch-write-to-reply convention as p50_latency_us).
  double p99_latency_us = 0.0;
};

/// \brief Runs the load against a daemon already listening on
/// 127.0.0.1:`options.port`. Returns an error if any connection cannot
/// be established or dies before its replies arrive.
Result<LoadGenResult> RunLoadGen(const LoadGenOptions& options);

/// \brief Shape of one idle-flood run — the connection-core stress
/// workload: thousands of keep-alive connections that sit idle (costing
/// the epoll daemon fds, not threads), a handful of Zipf-bursty senders
/// doing real traffic through the flood, plus optional hostile sidecars
/// (slowloris dribblers and never-reading consumers). The generator
/// holds every idle connection with ~one fd — no thread per connection —
/// so a single test process can field 10k of them.
struct IdleFloodOptions {
  /// Daemon port on 127.0.0.1 (required, nonzero).
  uint16_t port = 0;
  /// Idle keep-alive connections opened and held for the whole run.
  uint32_t idle_conns = 1000;
  /// Concurrent bursty senders (RunLoadGen clients riding through the
  /// flood; 0 = flood only).
  uint32_t burst_clients = 4;
  /// Requests each burst client sends.
  uint64_t requests_per_client = 500;
  /// Pipelining depth of the burst clients.
  uint32_t pipeline = 8;
  /// Top-M requested per burst call.
  uint32_t m = 20;
  /// User-id space of the burst traffic.
  uint32_t num_users = 1;
  /// Model name sent with every burst request.
  std::string model = "default";
  /// Burst skew (LoadGenOptions::zipf_skew; 3 = heavily bursty).
  double zipf_skew = 3.0;
  /// Slowloris sidecars: connections dribbling one byte of a request
  /// every `slow_writer_interval_ms`, never completing a line.
  uint32_t slow_writers = 0;
  /// Dribble cadence of the slowloris sidecars.
  uint32_t slow_writer_interval_ms = 100;
  /// Never-reading sidecars: connections that pipeline requests and
  /// never read a reply — reply backlog builds until the server's
  /// slow-consumer policy disconnects them.
  uint32_t never_readers = 0;
  /// Requests each never-reader pipelines before going silent.
  uint64_t never_reader_requests = 256;
  /// Hostile sidecars keep running at least this long, even when the
  /// burst finishes earlier. The end-of-run health probe of the idle
  /// fleet happens after both.
  uint32_t duration_ms = 1000;
  /// Burst clients honor 503 sheds with backoff (LoadGenOptions).
  bool retry_shed = true;
  /// Reconnect attempts per shed burst batch.
  uint32_t max_shed_retries = 8;
  /// Optional per-reply hook for the burst traffic (forwarded as
  /// LoadGenOptions::on_reply — same thread-safety rules). Lets a caller
  /// check every burst reply against an oracle *while* the flood holds,
  /// which is how bench_conn proves bit-identical serving under 5k idle
  /// connections.
  std::function<void(uint32_t user, const std::string& line)> on_burst_reply;
};

/// \brief What an idle-flood run observed.
struct IdleFloodResult {
  /// Idle connections still healthy at the end of the run: connect
  /// succeeded and the end-of-run probe (recv with MSG_DONTWAIT) saw an
  /// open, silent socket — no EOF, no reset, no unsolicited 408/503.
  uint64_t connections_held = 0;
  /// Idle connections that failed to connect, were closed, or got an
  /// unsolicited reply (a shed or reap) during the run.
  uint64_t connections_dropped = 0;
  /// Slowloris sidecars whose connection the server closed mid-run (the
  /// 408 reap working as intended; dribbles never reset the idle clock).
  uint64_t slow_writers_reaped = 0;
  /// Never-readers whose connection the server closed mid-run (the
  /// slow-consumer disconnect working as intended).
  uint64_t never_readers_closed = 0;
  /// Burst traffic tallies (RunLoadGen semantics).
  uint64_t burst_requests = 0;
  uint64_t burst_ok = 0;
  uint64_t burst_errors = 0;
  uint64_t shed_retries = 0;
  double burst_rps = 0.0;
  double burst_p50_us = 0.0;
  double burst_p99_us = 0.0;
  /// Wall clock of the whole run (connect flood to final probe).
  double seconds = 0.0;
};

/// \brief Runs the idle flood against a daemon already listening on
/// 127.0.0.1:`options.port`. Only setup failures (no port, first socket
/// unopenable) are errors — dropped idle connections and reaped sidecars
/// are *results*, because the run exists to measure how the server
/// treats them.
Result<IdleFloodResult> RunIdleFlood(const IdleFloodOptions& options);

/// \brief The deterministic item ids of one generated history request:
/// `len` ids in [0, num_items), unsorted and possibly duplicated (the
/// daemon's sanitization is part of what the traffic exercises). `cursor`
/// identifies the request (the generator uses client_index << 32 | seq),
/// so oracles can replay the exact traffic a run produced.
std::vector<uint32_t> LoadGenHistory(uint64_t cursor, uint32_t len,
                                     uint32_t num_items);

/// \brief Renders `value` exactly as the daemon's JSON writer does and
/// parses it back: the double a client actually observes on the wire.
/// Pass oracle scores through this before an exact comparison against a
/// parsed reply — the single definition of the wire-precision contract
/// shared by daemon_test and bench_daemon_hot.
inline double WireRoundTripDouble(double value) {
  JsonWriter w;
  w.Double(value);
  return JsonValue::Parse(w.str())->number();
}

/// \brief True when `line` is an `"ok":true` recommend reply whose
/// ranked items match `expect` exactly — item ids bit-identical and
/// scores identical after the WireRoundTripDouble rendering both sides
/// pass through. This is the bit-identical-serving check the concurrent
/// daemon tests and the daemon bench both apply to every reply.
inline bool ReplyMatchesRanked(const std::string& line,
                               std::span<const ScoredItem> expect) {
  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok()) return false;
  const JsonValue* ok = parsed->Find("ok");
  if (ok == nullptr || !ok->boolean()) return false;
  const JsonValue* items = parsed->Find("items");
  if (items == nullptr || !items->is_array()) return false;
  if (items->array().size() != expect.size()) return false;
  for (size_t r = 0; r < expect.size(); ++r) {
    const JsonValue& entry = items->array()[r];
    const JsonValue* item = entry.Find("item");
    const JsonValue* score = entry.Find("score");
    if (item == nullptr || score == nullptr) return false;
    if (item->number() != static_cast<double>(expect[r].item) ||
        score->number() != WireRoundTripDouble(expect[r].score)) {
      return false;
    }
  }
  return true;
}

}  // namespace ocular

#endif  // OCULAR_SERVING_LOADGEN_H_
