#include "serving/loadgen.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "common/strings.h"
#include "common/timer.h"
#include "serving/daemon.h"  // MergedPercentile
#include "serving/net_util.h"
#include "serving/retry.h"

namespace ocular {

namespace {

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One client's connection state and tally.
struct ClientRun {
  int fd = -1;
  uint64_t ok_replies = 0;
  uint64_t error_replies = 0;
  uint64_t shed_retries = 0;
  uint64_t reconnects = 0;
  std::vector<double> latencies_us;
  Status status = Status::OK();
};

Status ConnectLoopback(uint16_t port, int* out_fd) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  // The workload is many small request lines; without NODELAY, Nagle
  // delays partial batches behind unacked data and the measurement turns
  // into a timer artifact.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status st = Status::IOError(std::string("connect 127.0.0.1:") +
                                      std::to_string(port) + ": " +
                                      std::strerror(errno));
    ::close(fd);
    return st;
  }
  *out_fd = fd;
  return Status::OK();
}

void RunClient(const LoadGenOptions& options, uint32_t client_index,
               ClientRun* run) {
  std::string read_buffer;
  std::string batch;
  std::string line;
  run->latencies_us.reserve(options.requests_per_client);
  // Offset clients into the user space so concurrent connections serve
  // different rows (a co-prime stride avoids aliasing when clients
  // divides num_users).
  uint64_t user_cursor =
      options.num_users == 0
          ? 0
          : (static_cast<uint64_t>(client_index) * 7919) % options.num_users;
  uint64_t remaining = options.requests_per_client;
  uint64_t sent = 0;  // per-client request sequence (history cadence)
  std::vector<uint32_t> batch_users;
  std::vector<std::vector<uint32_t>> batch_histories;  // empty = user slot
  while (remaining > 0) {
    const uint32_t depth = static_cast<uint32_t>(std::min<uint64_t>(
        std::max<uint32_t>(options.pipeline, 1), remaining));
    batch.clear();
    batch_users.clear();
    batch_histories.clear();
    for (uint32_t p = 0; p < depth; ++p) {
      const bool history_slot = options.history_every > 0 &&
                                options.num_items > 0 &&
                                sent % options.history_every == 0;
      ++sent;
      if (history_slot) {
        const uint64_t cursor =
            (static_cast<uint64_t>(client_index) << 32) | (sent - 1);
        std::vector<uint32_t> history = LoadGenHistory(
            cursor, options.history_len, options.num_items);
        batch += "{\"cmd\":\"recommend\",\"model\":\"" + options.model +
                 "\",\"history\":[";
        for (size_t n = 0; n < history.size(); ++n) {
          if (n > 0) batch += ',';
          batch += std::to_string(history[n]);
        }
        batch += "],\"m\":" + std::to_string(options.m) + "}\n";
        batch_users.push_back(0);
        batch_histories.push_back(std::move(history));
        continue;
      }
      uint32_t user;
      if (options.zipf_skew > 0.0 && options.num_users > 0) {
        // Bursty skew: a deterministic per-request u ∈ [0,1) raised to
        // zipf_skew concentrates the mass near user 0 — hot rows absorb
        // most of the burst, like real catalog traffic.
        uint64_t h = ((static_cast<uint64_t>(client_index) << 32) | sent) *
                         0x9e3779b97f4a7c15ULL +
                     0xbf58476d1ce4e5b9ULL;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        const double u01 =
            static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
        user = std::min(
            options.num_users - 1,
            static_cast<uint32_t>(static_cast<double>(options.num_users) *
                                  std::pow(u01, options.zipf_skew)));
      } else {
        user = static_cast<uint32_t>(user_cursor);
        user_cursor = options.num_users == 0
                          ? user_cursor + 1
                          : (user_cursor + 1) % options.num_users;
      }
      batch += "{\"cmd\":\"recommend\",\"model\":\"" + options.model +
               "\",\"user\":" + std::to_string(user) +
               ",\"m\":" + std::to_string(options.m) + "}\n";
      batch_users.push_back(user);
      batch_histories.emplace_back();
    }
    uint32_t attempt = 0;
    bool batch_done = false;
    while (!batch_done) {
      const double sent_us = NowMicros();
      bool disconnected = false;
      bool shed = false;
      uint64_t retry_after_ms = 50;
      if (!net::SendAll(run->fd, batch.data(), batch.size())) {
        if (!options.reconnect_on_close) {
          run->status = Status::IOError("write failed mid-run");
          ::close(run->fd);
          run->fd = -1;
          return;
        }
        disconnected = true;
      }
      const size_t latency_mark = run->latencies_us.size();
      uint64_t batch_ok = 0;
      uint64_t batch_err = 0;
      for (uint32_t p = 0; p < depth && !disconnected; ++p) {
        if (!net::ReadLine(run->fd, &read_buffer, &line)) {
          if (!options.reconnect_on_close) {
            run->status = Status::IOError(
                "connection closed before all replies arrived (" +
                std::to_string(remaining) + " outstanding)");
            ::close(run->fd);
            run->fd = -1;
            return;
          }
          disconnected = true;
          break;
        }
        if (retry::ParseShedReply(line, &retry_after_ms)) {
          shed = true;
          break;
        }
        run->latencies_us.push_back(NowMicros() - sent_us);
        if (StartsWith(line, "{\"ok\":true")) {
          ++batch_ok;
        } else {
          ++batch_err;
        }
        if (!batch_histories[p].empty()) {
          if (options.on_history_reply) {
            options.on_history_reply(batch_histories[p], line);
          }
        } else if (options.on_reply) {
          options.on_reply(batch_users[p], line);
        }
      }
      if (!shed && !disconnected) {
        run->ok_replies += batch_ok;
        run->error_replies += batch_err;
        remaining -= depth;
        batch_done = true;
        continue;
      }
      // Either the server 503'd this connection (accept queue full — it
      // answered without reading a single request) or, in fleet mode, the
      // connection simply died mid-batch (a proxy or replica restarting
      // under it). Both leave the whole batch outstanding: roll back,
      // back off, reconnect, and resend the identical bytes. Replies
      // consumed before the cut are re-validated on resend — the verbs
      // the generator sends are idempotent, so a duplicate hook call is
      // harmless.
      run->latencies_us.resize(latency_mark);
      read_buffer.clear();
      ::close(run->fd);
      run->fd = -1;
      if (shed && !options.retry_shed) {
        run->status =
            Status::IOError("connection shed with a 503 reply (retry_shed off)");
        return;
      }
      if (shed) {
        ++run->shed_retries;
      } else {
        ++run->reconnects;
      }
      for (;;) {
        if (attempt >= options.max_shed_retries) {
          run->status = Status::IOError(
              std::string(shed ? "connection shed with a 503 reply"
                               : "connection lost mid-run") +
              " after " + std::to_string(attempt) + " reconnect attempts");
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(
            retry::BackoffMs(retry_after_ms, client_index, attempt)));
        ++attempt;
        const Status reconnect = ConnectLoopback(options.port, &run->fd);
        if (reconnect.ok()) break;
        if (!options.reconnect_on_close) {
          run->status = reconnect;
          return;
        }
        // Fleet mode: the listener itself may be down for a moment (a
        // restarting proxy); a refused connect is one more attempt, not
        // the end of the run.
      }
    }
  }
  // Close as soon as this client is done: a daemon worker may be blocked
  // in read() on this connection, and with fewer workers than clients it
  // must move on to the next queued connection without waiting for the
  // whole fleet to finish.
  ::close(run->fd);
  run->fd = -1;
}

}  // namespace

std::vector<uint32_t> LoadGenHistory(uint64_t cursor, uint32_t len,
                                     uint32_t num_items) {
  std::vector<uint32_t> out;
  if (num_items == 0) return out;
  out.reserve(len);
  for (uint32_t j = 0; j < len; ++j) {
    // Stateless splitmix-style hash of (cursor, j): every request gets a
    // distinct, reproducible id sequence with no RNG object to thread
    // through the client fleet.
    uint64_t h = cursor * 0x9e3779b97f4a7c15ULL +
                 static_cast<uint64_t>(j) * 0xbf58476d1ce4e5b9ULL +
                 0x94d049bb133111ebULL;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    out.push_back(static_cast<uint32_t>(h % num_items));
  }
  return out;
}

Result<LoadGenResult> RunLoadGen(const LoadGenOptions& options) {
  if (options.port == 0) {
    return Status::InvalidArgument("loadgen needs a nonzero port");
  }
  if (options.clients == 0 || options.requests_per_client == 0) {
    return Status::InvalidArgument(
        "loadgen needs at least one client and one request");
  }
  if (options.history_every > 0 && options.num_items == 0) {
    return Status::InvalidArgument(
        "history traffic needs num_items (the catalog generated histories "
        "draw from)");
  }
  std::vector<ClientRun> runs(options.clients);
  // Every exit path below must release the fleet's sockets — a failed
  // run must not leak fds into a long-lived caller.
  const auto close_all = [&runs] {
    for (ClientRun& run : runs) {
      if (run.fd >= 0) ::close(run.fd);
      run.fd = -1;
    }
  };
  // Connect everything before the clock starts: connection setup is not
  // the thing being measured, and a late connect would undercount
  // concurrency for part of the run.
  for (uint32_t c = 0; c < options.clients; ++c) {
    const Status st = ConnectLoopback(options.port, &runs[c].fd);
    if (!st.ok()) {
      close_all();
      return st;
    }
  }

  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  for (uint32_t c = 0; c < options.clients; ++c) {
    threads.emplace_back(RunClient, std::cref(options), c, &runs[c]);
  }
  for (std::thread& t : threads) t.join();
  const double seconds = watch.ElapsedSeconds();

  LoadGenResult result;
  std::vector<double> latencies;
  close_all();  // every client thread has joined; fds are all idle now
  for (ClientRun& run : runs) {
    if (!run.status.ok()) return run.status;
    result.ok_replies += run.ok_replies;
    result.error_replies += run.error_replies;
    result.shed_retries += run.shed_retries;
    result.reconnects += run.reconnects;
    latencies.insert(latencies.end(), run.latencies_us.begin(),
                     run.latencies_us.end());
  }
  result.requests = result.ok_replies + result.error_replies;
  result.seconds = seconds;
  result.requests_per_second =
      seconds > 0.0 ? static_cast<double>(result.requests) / seconds : 0.0;
  result.p50_latency_us = MergedPercentile(&latencies, 0.50);
  result.p99_latency_us = MergedPercentile(&latencies, 0.99);
  return result;
}

Result<IdleFloodResult> RunIdleFlood(const IdleFloodOptions& options) {
  if (options.port == 0) {
    return Status::InvalidArgument("idle flood needs a nonzero port");
  }
  Stopwatch watch;
  IdleFloodResult result;

  // The idle fleet: plain connected sockets, held. No thread each — a
  // connection the daemon holds for a fd must cost the generator no more
  // than a fd either, or 10k of them could not be simulated at all.
  std::vector<int> idle;
  idle.reserve(options.idle_conns);
  for (uint32_t i = 0; i < options.idle_conns; ++i) {
    int fd = -1;
    if (ConnectLoopback(options.port, &fd).ok()) {
      idle.push_back(fd);
    } else {
      ++result.connections_dropped;  // refused/shed at connect time
    }
  }

  std::atomic<bool> stop{false};

  // Slowloris sidecars: one thread dribbles a byte to every loris fd per
  // interval — none of them ever completes a request line, so a server
  // whose idle clock counts completed requests reaps them all.
  std::vector<int> loris(options.slow_writers, -1);
  for (int& fd : loris) {
    if (!ConnectLoopback(options.port, &fd).ok()) fd = -1;
  }
  std::thread loris_thread([&] {
    const std::string drip = R"({"cmd":"recommend","user":0,)";
    size_t at = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int& fd : loris) {
        if (fd < 0) continue;
        const char byte = drip[at % drip.size()];
        if (!net::SendAll(fd, &byte, 1)) {
          ::close(fd);
          fd = -1;
          ++result.slow_writers_reaped;
        }
      }
      ++at;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.slow_writer_interval_ms));
    }
  });

  // Never-reading sidecars: pipeline a pile of real requests, then go
  // silent without ever reading a reply. The server's outbound buffer
  // for these connections grows until its slow-consumer policy cuts
  // them loose; a blocking daemon would have wedged a worker instead.
  std::vector<int> mute(options.never_readers, -1);
  std::thread mute_thread([&] {
    std::string batch;
    for (uint64_t r = 0; r < options.never_reader_requests; ++r) {
      batch += "{\"cmd\":\"recommend\",\"model\":\"" + options.model +
               "\",\"user\":0,\"m\":" + std::to_string(options.m) + "}\n";
    }
    for (int& fd : mute) {
      if (!ConnectLoopback(options.port, &fd).ok()) fd = -1;
    }
    for (int& fd : mute) {
      if (fd < 0) continue;
      if (!net::SendAll(fd, batch.data(), batch.size())) {
        ::close(fd);
        fd = -1;
        ++result.never_readers_closed;
      }
    }
    // Hold without reading until the run ends; a reset from the server
    // (slow-consumer disconnect) surfaces on the final probe below.
  });

  // The bursty senders run *through* the flood — their throughput and
  // tail latency is what the connection core must protect.
  if (options.burst_clients > 0) {
    LoadGenOptions burst;
    burst.port = options.port;
    burst.clients = options.burst_clients;
    burst.requests_per_client = options.requests_per_client;
    burst.pipeline = options.pipeline;
    burst.m = options.m;
    burst.num_users = options.num_users;
    burst.model = options.model;
    burst.zipf_skew = options.zipf_skew;
    burst.retry_shed = options.retry_shed;
    burst.max_shed_retries = options.max_shed_retries;
    burst.on_reply = options.on_burst_reply;
    auto r = RunLoadGen(burst);
    if (!r.ok()) {
      stop.store(true, std::memory_order_relaxed);
      loris_thread.join();
      mute_thread.join();
      for (const int fd : idle) ::close(fd);
      for (const int fd : loris) {
        if (fd >= 0) ::close(fd);
      }
      for (const int fd : mute) {
        if (fd >= 0) ::close(fd);
      }
      return r.status();
    }
    result.burst_requests = r->requests;
    result.burst_ok = r->ok_replies;
    result.burst_errors = r->error_replies;
    result.shed_retries = r->shed_retries;
    result.burst_rps = r->requests_per_second;
    result.burst_p50_us = r->p50_latency_us;
    result.burst_p99_us = r->p99_latency_us;
  }

  // Keep the hostiles going for the full configured duration even when
  // the burst finished early (a short burst must not cut the slowloris
  // rehearsal short).
  while (watch.ElapsedSeconds() * 1000.0 <
         static_cast<double>(options.duration_ms)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  loris_thread.join();
  mute_thread.join();

  // End-of-run health probe of the idle fleet: a held connection is an
  // open, silent socket. EAGAIN = healthy; EOF, reset, or any
  // unsolicited bytes (a 408/503 the server pushed) = dropped.
  for (const int fd : idle) {
    char probe;
    const ssize_t n = ::recv(fd, &probe, 1, MSG_DONTWAIT);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      ++result.connections_held;
    } else {
      ++result.connections_dropped;
    }
    ::close(fd);
  }
  for (const int fd : loris) {
    if (fd >= 0) ::close(fd);
  }
  for (int& fd : mute) {
    if (fd < 0) continue;
    // A never-reader's socket holds unread replies whether or not the
    // server already cut it loose, so the probe drains: EAGAIN with the
    // buffer empty = the server is still patiently holding the backlog;
    // EOF or a reset under the drained bytes = the slow-consumer policy
    // disconnected it.
    char sink[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, sink, sizeof(sink), MSG_DONTWAIT);
      if (n > 0) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      ++result.never_readers_closed;
      break;
    }
    ::close(fd);
  }
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace ocular
