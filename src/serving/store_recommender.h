#ifndef OCULAR_SERVING_STORE_RECOMMENDER_H_
#define OCULAR_SERVING_STORE_RECOMMENDER_H_

#include <cmath>
#include <string>

#include "core/model_store.h"
#include "eval/recommender.h"
#include "sparse/linalg.h"

namespace ocular {

/// \brief Recommender view over an mmapped ModelStore — the serving
/// adapter of the binary model path.
///
/// Construction is O(1) and copies nothing: ScoreBlock/RawScoreBlock run
/// vec::AffinityBlock directly over the store's mmapped K x n_i serving
/// section (the same kernel, on the same transposed layout, that
/// OcularModelRecommender builds in memory — so rankings are bit-identical
/// to the in-memory path). The score map is chosen from the file's
/// BinaryModelKind, which is what lets one daemon serve OCuLaR and the
/// factor baselines through a single code path. Does not own the store;
/// the caller keeps it alive (ServableModel in serving/registry.h pairs
/// the two).
class StoreRecommender : public Recommender {
 public:
  /// \brief Wraps an open store. The store must outlive the recommender.
  explicit StoreRecommender(const ModelStore& store)
      : store_(&store),
        probability_map_(store.meta().kind ==
                         BinaryModelKind::kOcularProbability) {}

  /// \brief The algorithm tag recorded in the file ("OCuLaR", "wALS", ...).
  std::string name() const override { return store_->meta().algorithm; }

  /// \brief Always fails: the store is a pre-fitted artifact.
  Status Fit(const CsrMatrix& /*interactions*/) override {
    return Status::FailedPrecondition(
        "StoreRecommender serves a pre-fitted model file");
  }

  /// \brief Per-pair score straight off the mapped factor rows.
  double Score(uint32_t u, uint32_t i) const override {
    const double affinity = vec::Dot(store_->user_factors().Row(u),
                                     store_->item_factors().Row(i));
    return probability_map_ ? -std::expm1(-affinity) : affinity;
  }

  /// \brief Blocked scoring over the mapped serving-layout section.
  void ScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                  std::span<double> out) const override {
    (void)item_end;
    vec::AffinityBlock(store_->user_factors().Row(u),
                       store_->item_factors_t(), item_begin, out);
    if (probability_map_) {
      for (double& s : out) s = -std::expm1(-s);
    }
  }

  /// \brief Raw ranking kernel: the affinity itself (the probability map,
  /// when present, is strictly increasing and deferred to ScoreFromRaw).
  void RawScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                     std::span<double> out) const override {
    (void)item_end;
    vec::AffinityBlock(store_->user_factors().Row(u),
                       store_->item_factors_t(), item_begin, out);
  }

  /// \brief Maps a kept raw affinity to the public score.
  double ScoreFromRaw(double raw) const override {
    return probability_map_ ? -std::expm1(-raw) : raw;
  }

  /// \brief Users of the mapped model.
  uint32_t num_users() const override { return store_->num_users(); }
  /// \brief Items of the mapped model.
  uint32_t num_items() const override { return store_->num_items(); }

  /// \brief The underlying store.
  const ModelStore& store() const { return *store_; }

 private:
  const ModelStore* store_;
  bool probability_map_;
};

}  // namespace ocular

#endif  // OCULAR_SERVING_STORE_RECOMMENDER_H_
