#include "serving/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault.h"

namespace ocular {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;
// A record claiming a payload beyond this is corruption, not data: the
// largest real payload is bounded by the daemon's request-line cap.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = kFnvOffset;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPod(const std::string& in, size_t* pos, T* value) {
  if (in.size() - *pos < sizeof(T)) return false;
  std::memcpy(value, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

std::string EncodeUpdate(const UpdateRecord& record) {
  std::string payload;
  payload.reserve(40 + record.adds.size() * 8);
  AppendPod(&payload, record.base_fingerprint);
  AppendPod(&payload, record.seed);
  AppendPod(&payload, record.num_users);
  AppendPod(&payload, record.num_items);
  AppendPod(&payload, record.sweeps);
  AppendPod(&payload, uint32_t{0});  // reserved
  AppendPod(&payload, static_cast<uint64_t>(record.adds.size()));
  for (const auto& [user, item] : record.adds) {
    AppendPod(&payload, user);
    AppendPod(&payload, item);
  }
  return payload;
}

bool DecodeUpdate(const std::string& payload, UpdateRecord* record) {
  size_t pos = 0;
  uint32_t reserved = 0;
  uint64_t count = 0;
  if (!ReadPod(payload, &pos, &record->base_fingerprint) ||
      !ReadPod(payload, &pos, &record->seed) ||
      !ReadPod(payload, &pos, &record->num_users) ||
      !ReadPod(payload, &pos, &record->num_items) ||
      !ReadPod(payload, &pos, &record->sweeps) ||
      !ReadPod(payload, &pos, &reserved) || !ReadPod(payload, &pos, &count)) {
    return false;
  }
  if (count > (payload.size() - pos) / 8) return false;
  record->adds.clear();
  record->adds.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t user = 0;
    uint32_t item = 0;
    if (!ReadPod(payload, &pos, &user) || !ReadPod(payload, &pos, &item)) {
      return false;
    }
    record->adds.emplace_back(user, item);
  }
  return pos == payload.size();
}

}  // namespace

UpdateJournal::~UpdateJournal() { Close(); }

UpdateJournal::UpdateJournal(UpdateJournal&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

UpdateJournal& UpdateJournal::operator=(UpdateJournal&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

Status UpdateJournal::Open(const std::string& path) {
  Close();
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("open journal " + path + ": " +
                           std::strerror(errno));
  }
  fd_ = fd;
  path_ = path;
  return Status::OK();
}

void UpdateJournal::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status UpdateJournal::AppendFrame(RecordType type, const std::string& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("journal is not open");
  if (fault::Maybe("journal.append")) {
    return fault::InjectedError("journal.append");
  }
  std::string frame;
  frame.reserve(16 + payload.size());
  AppendPod(&frame, static_cast<uint32_t>(type));
  AppendPod(&frame, static_cast<uint32_t>(payload.size()));
  AppendPod(&frame, Fnv1a(payload));
  frame += payload;
  // One write(2) per record: O_APPEND makes the offset atomic, and a
  // crash mid-write leaves at most one torn record at the tail — exactly
  // what the reader is built to discard.
  size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write journal " + path_ + ": " +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  if (fault::Maybe("journal.fsync")) return fault::InjectedError("journal.fsync");
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync journal " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status UpdateJournal::AppendUpdate(const UpdateRecord& record) {
  return AppendFrame(RecordType::kUpdate, EncodeUpdate(record));
}

Status UpdateJournal::AppendCommit() {
  return AppendFrame(RecordType::kCommit, std::string());
}

Status UpdateJournal::AppendAbort() {
  return AppendFrame(RecordType::kAbort, std::string());
}

Result<std::vector<UpdateJournal::Record>> UpdateJournal::ReadAll(
    const std::string& path, bool* torn_tail) {
  if (torn_tail != nullptr) *torn_tail = false;
  std::vector<Record> records;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return records;  // no journal yet: empty, not error
    return Status::IOError("open journal " + path + ": " +
                           std::strerror(errno));
  }
  std::string bytes;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st =
          Status::IOError("read journal " + path + ": " + std::strerror(errno));
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    bytes.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t pos = 0;
  while (pos < bytes.size()) {
    uint32_t type = 0;
    uint32_t payload_len = 0;
    uint64_t checksum = 0;
    const size_t frame_start = pos;
    if (!ReadPod(bytes, &pos, &type) || !ReadPod(bytes, &pos, &payload_len) ||
        !ReadPod(bytes, &pos, &checksum)) {
      pos = frame_start;  // torn header
      break;
    }
    if (payload_len > kMaxPayloadBytes || bytes.size() - pos < payload_len) {
      pos = frame_start;  // corrupt length or torn payload
      break;
    }
    const std::string payload = bytes.substr(pos, payload_len);
    if (Fnv1a(payload) != checksum) {
      pos = frame_start;  // torn/corrupt payload bytes
      break;
    }
    pos += payload_len;
    Record record;
    switch (static_cast<RecordType>(type)) {
      case RecordType::kUpdate:
        record.type = RecordType::kUpdate;
        if (!DecodeUpdate(payload, &record.update)) {
          // Checksummed but undecodable: written by something that does
          // not speak this format — stop trusting the file here.
          pos = frame_start;
          type = 0;
        }
        break;
      case RecordType::kCommit:
      case RecordType::kAbort:
        record.type = static_cast<RecordType>(type);
        break;
      default:
        pos = frame_start;  // unknown type: treat as corrupt tail
        type = 0;
        break;
    }
    if (pos == frame_start) break;
    records.push_back(std::move(record));
  }
  if (pos != bytes.size() && torn_tail != nullptr) *torn_tail = true;
  return records;
}

Result<UpdateJournal::Plan> UpdateJournal::LoadPlan(const std::string& path) {
  Plan plan;
  OCULAR_ASSIGN_OR_RETURN(std::vector<Record> records,
                          ReadAll(path, &plan.torn_tail));
  for (const Record& record : records) {
    switch (record.type) {
      case RecordType::kUpdate:
        // Back-to-back updates can only come from a crash window followed
        // by appends from a recovery-less writer; keep the newest as the
        // pending one and treat the orphaned older ones as aborted —
        // conservative, and impossible under the daemon's discipline.
        if (plan.has_pending) ++plan.aborted;
        plan.has_pending = true;
        plan.pending = record.update;
        break;
      case RecordType::kCommit:
        if (plan.has_pending) {
          plan.applied.push_back(std::move(plan.pending));
          plan.has_pending = false;
        }
        break;
      case RecordType::kAbort:
        if (plan.has_pending) {
          plan.has_pending = false;
          ++plan.aborted;
        }
        break;
    }
  }
  return plan;
}

}  // namespace ocular
