#ifndef OCULAR_SERVING_BATCH_H_
#define OCULAR_SERVING_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "eval/recommender.h"
#include "serving/score_engine.h"

namespace ocular {

/// \file
/// \brief Bulk top-M generation for every user — the offline batch
/// artifact of the paper's deployment, produced by the same blocked
/// engine the online daemon serves from (rankings agree bit for bit).

/// \brief Options for batch recommendation generation.
struct BatchOptions {
  /// Recommendations per user.
  uint32_t m = 50;
  /// Drop recommendations below this score (applied during selection; same
  /// surviving set as the historical post-ranking filter). The B2B
  /// deployment only surfaces opportunities a seller would act on.
  double min_score = 0.0;
  /// Skip users with no training history (their scores are
  /// uninformative for personalized models).
  bool skip_cold_users = true;
  /// Items per scoring tile of the blocked engine.
  uint32_t block_items = kDefaultScoreBlockItems;
  /// Optional co-cluster candidate pruning (OCuLaR models only): when set,
  /// each user is served from its co-clustered items instead of the full
  /// catalog. Approximate — see CoClusterCandidateIndex. Off by default.
  const CoClusterCandidateIndex* candidates = nullptr;
};

/// \brief The precomputed top-M lists for every user — the artifact the
/// paper's deployment serves to sales teams (Section VIII):
/// recommendations are generated offline in bulk, then reviewed per
/// client.
struct BatchRecommendations {
  /// recommendations[u] = ranked ScoredItems for user u (possibly empty).
  std::vector<std::vector<ScoredItem>> recommendations;
  /// Users with at least one surviving recommendation.
  uint32_t users_scored = 0;
  /// Total recommendations across users.
  size_t total_items = 0;
};

/// \brief Produces top-M lists for all users of `rec` through the blocked
/// scoring engine, excluding each user's training positives. With a pool,
/// users are partitioned into nnz-balanced contiguous ranges (equal WORK,
/// not equal rows — see BalancedRowRanges) and each worker serves its
/// ranges out of a private ServeWorkspace, so the steady state allocates
/// only the output lists. Serial and parallel runs produce bit-identical
/// results. `rec` must already be fitted. Pass pool = nullptr for serial.
Result<BatchRecommendations> RecommendForAllUsers(const Recommender& rec,
                                                  const CsrMatrix& train,
                                                  const BatchOptions& options,
                                                  ThreadPool* pool = nullptr);

}  // namespace ocular

#endif  // OCULAR_SERVING_BATCH_H_
