#ifndef OCULAR_SERVING_BATCH_H_
#define OCULAR_SERVING_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "eval/recommender.h"

namespace ocular {

/// Options for batch recommendation generation.
struct BatchOptions {
  /// Recommendations per user.
  uint32_t m = 50;
  /// Drop recommendations below this score (after ranking). The B2B
  /// deployment only surfaces opportunities a seller would act on.
  double min_score = 0.0;
  /// Skip users with no training history (their scores are
  /// uninformative for personalized models).
  bool skip_cold_users = true;
};

/// The precomputed top-M lists for every user — the artifact the paper's
/// deployment serves to sales teams (Section VIII): recommendations are
/// generated offline in bulk, then reviewed per client.
struct BatchRecommendations {
  /// recommendations[u] = ranked ScoredItems for user u (possibly empty).
  std::vector<std::vector<ScoredItem>> recommendations;
  /// Users with at least one surviving recommendation.
  uint32_t users_scored = 0;
  /// Total recommendations across users.
  size_t total_items = 0;
};

/// Produces top-M lists for all users of `rec`, excluding each user's
/// training positives, partitioned across `pool`'s workers (each user's
/// ranking is independent — the same data-parallel shape as the training
/// phases). `rec` must already be fitted. Pass pool = nullptr for serial.
Result<BatchRecommendations> RecommendForAllUsers(const Recommender& rec,
                                                  const CsrMatrix& train,
                                                  const BatchOptions& options,
                                                  ThreadPool* pool = nullptr);

}  // namespace ocular

#endif  // OCULAR_SERVING_BATCH_H_
