#ifndef OCULAR_SERVING_DAEMON_H_
#define OCULAR_SERVING_DAEMON_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "core/fold_in.h"
#include "core/incremental.h"
#include "serving/registry.h"
#include "serving/score_engine.h"

namespace ocular {

/// \brief Point-in-time serving statistics, as reported by the `stats`
/// verb. Counters are merged across the per-worker shards at snapshot
/// time; percentiles are exact over the union of the per-worker latency
/// windows (see MergedPercentile).
struct DaemonStatsSnapshot {
  /// Requests answered (including failed ones), summed over workers.
  uint64_t requests_served = 0;
  /// Requests answered with "ok": false, summed over workers.
  uint64_t errors = 0;
  /// Hot reloads performed (SIGHUP or `reload` verb).
  uint64_t reloads = 0;
  /// Connections refused at admission with a 503-style reply: the
  /// max_connections cap was reached or accept() hit fd exhaustion
  /// (EMFILE/ENFILE). Load shedding, never silent drops.
  uint64_t connections_shed = 0;
  /// Connections closed with a 408-style reply because no complete
  /// request arrived within Options::idle_timeout_ms (idle peers and
  /// slow-loris byte-dribblers alike).
  uint64_t connections_timed_out = 0;
  /// Connections currently open on the epoll core (a gauge, not a
  /// counter: accepted minus closed).
  uint64_t connections_open = 0;
  /// Subset of connections_shed refused because Options::max_connections
  /// open connections were already admitted.
  uint64_t connections_capped = 0;
  /// Connections dropped by the slow-consumer policy: the outbound
  /// buffer exceeded Options::max_outbound_bytes, or a nonempty outbound
  /// buffer made no write progress for Options::io_timeout_ms.
  uint64_t connections_slow_closed = 0;
  /// accept() failures with EMFILE/ENFILE, each handled via the
  /// reserve-fd parachute (victim accepted, shed with retry_after_ms,
  /// reserve reopened) instead of spinning or dying.
  uint64_t accept_emfile = 0;
  /// High-water mark of any single connection's outbound buffer, bytes —
  /// how close the slowest consumer came to max_outbound_bytes.
  uint64_t peak_outbound_bytes = 0;
  /// History-based (fold-in) recommend requests answered, summed over
  /// workers.
  uint64_t fold_in_requests = 0;
  /// Out-of-range item ids dropped from client histories — the warning
  /// counter for client catalogs drifting ahead of the served model.
  uint64_t history_dropped_ids = 0;
  /// Stored-user recommends answered from a sharded (`*.shardset`)
  /// binding, summed over workers. Monolithic models never bump it, so
  /// the ratio against requests_served says how much traffic the shard
  /// router actually carries.
  uint64_t shard_requests = 0;
  /// In-daemon incremental updates published via the `update` verb.
  uint64_t updates = 0;
  /// Committed journal records re-merged into the training base at
  /// startup (RecoverJournal) — nonzero means this process inherited
  /// update deltas from a previous incarnation.
  uint64_t journal_recovered = 0;
  /// Pending (crash-windowed) journal records replayed to a fresh
  /// artifact at startup.
  uint64_t journal_replays = 0;
  /// Models currently loaded.
  size_t models_loaded = 0;
  /// Worker threads serving the TCP loop.
  size_t workers = 0;
  /// Median request latency over the merged recent window, microseconds.
  double p50_latency_us = 0.0;
  /// 99th-percentile request latency over the merged window, microseconds.
  double p99_latency_us = 0.0;
};

/// \brief Fixed-window latency ring with a single writer (the owning
/// worker) and lock-free readers (the stats snapshot). The writer stamps
/// samples with relaxed stores and publishes the count with release; a
/// reader acquires the count and copies the published prefix. A sample
/// being overwritten concurrently yields one stale-but-valid value in the
/// snapshot — fine for percentile reporting, and race-free by
/// construction (every access is atomic).
class LatencyRing {
 public:
  /// \brief A ring holding the `window` most recent samples (at least 1).
  explicit LatencyRing(size_t window)
      : samples_(window == 0 ? 1 : window) {}

  /// Records one sample. Single-writer: only the owning worker calls this.
  void Record(double micros) {
    const uint64_t n = count_.load(std::memory_order_relaxed);
    samples_[n % samples_.size()].store(micros, std::memory_order_relaxed);
    count_.store(n + 1, std::memory_order_release);
  }

  /// Appends the current window (up to `window` most recent samples, in
  /// no particular order) to `out`. Safe from any thread.
  void AppendWindowTo(std::vector<double>* out) const {
    const uint64_t published = count_.load(std::memory_order_acquire);
    const uint64_t n =
        published < samples_.size() ? published : samples_.size();
    for (uint64_t i = 0; i < n; ++i) {
      out->push_back(samples_[i].load(std::memory_order_relaxed));
    }
  }

 private:
  std::vector<std::atomic<double>> samples_;
  std::atomic<uint64_t> count_{0};  // total ever recorded
};

/// \brief What RequestServer::RecoverJournal did for one model at
/// startup. All-zero/false means the journal was absent or empty — a
/// clean previous shutdown with no updates ever applied.
struct JournalRecoveryStats {
  /// Committed updates whose deltas were re-merged into the training
  /// base (the --datasets CSV is the original snapshot; these restore
  /// everything applied since).
  uint64_t applied_merged = 0;
  /// A trailing uncommitted update was found whose artifact rename never
  /// happened; it was retrained and published now (then committed).
  bool replayed_pending = false;
  /// A trailing uncommitted update was found already published (artifact
  /// fingerprint moved past its base); only the missing commit record
  /// was appended.
  bool healed_commit = false;
  /// The journal ended in a torn/corrupt record (discarded; the prefix
  /// was recovered normally). Expected after a crash mid-append.
  bool torn_tail = false;
};

/// \brief Exact percentile of `samples` (modified in place: sorted).
/// Nearest-rank on the sorted merged window — index floor(p * (n - 1)) —
/// the same convention the single-ring daemon used, now applied AFTER
/// merging the per-worker windows so concurrency cannot skew the report
/// (averaging per-worker percentiles would). Returns 0 for an empty set.
double MergedPercentile(std::vector<double>* samples, double p);

/// \brief The request-serving core of the long-running daemon
/// (tools/ocular_served.cpp and the `ocular_cli serve` subcommand).
///
/// Speaks a newline-delimited JSON protocol — one request object per input
/// line, one response object per output line — over stdin/stdout
/// (RunStdioLoop) or a loopback TCP socket (RunTcpLoop). Requests:
///
///   {"cmd":"recommend","model":"default","user":3,"m":10}
///   {"cmd":"recommend","model":"default","user":3,"exclude":[1,7]}
///   {"cmd":"recommend","model":"default","history":[5,1,5,9],"m":10}
///   {"cmd":"update","model":"default","adds":[[12,3],[99,7]]}
///   {"cmd":"models"}      — loaded models and their shapes
///   {"cmd":"ping"}        — liveness probe: uptime + registry generation
///   {"cmd":"stats"}       — DaemonStatsSnapshot as JSON
///   {"cmd":"reload"}      — hot-reload every model (same path as SIGHUP)
///   {"cmd":"quit"}        — end the session (TCP: ends the connection)
///
/// Responses always carry "ok"; failures add "error" and never kill the
/// loop. `recommend` serves through the PR 3 blocked engine (ServeTopM)
/// out of a reusable per-worker ServeWorkspace, excluding the user's
/// training row by default (an explicit "exclude" array overrides it).
/// Rankings are bit-identical to RecommendForAllUsers on the same model
/// and exclusions, from every worker.
///
/// Live catalog (the paper's Section VIII deployment): `recommend` with a
/// `history` array instead of `user` serves an anonymous/new client by
/// folding their purchase history into a user factor (core/fold_in) and
/// ranking it through the same blocked engine — bit-identical to the
/// offline RecommendForHistory oracle on the same model. Histories are
/// untrusted wire input: they are sorted, deduplicated, and stripped of
/// out-of-range ids (counted in stats) before the solve, and a history
/// carrying no signal falls back to the deterministic popularity ranking
/// (the reply's "folded" flag says which path answered). `update` applies
/// interaction deltas (`adds` pairs, optionally growing the catalog) via
/// the warm-start incremental trainer on a copy of the current model,
/// persists the result over the model file (write-temp + rename), and
/// publishes it through the registry generation swap — in-flight requests
/// keep their lease, workers drain onto the new generation lock-free,
/// exactly the SIGHUP-reload guarantees. Updates require a bound dataset
/// (the training matrix is the delta's base) and serialize on one mutex;
/// reads never block.
///
/// Concurrency (PR 5, rebuilt event-driven in PR 10): RunTcpLoop is an
/// epoll readiness loop (the IO thread) multiplexing every nonblocking
/// connection socket, feeding a fixed pool of `Options::num_workers`
/// shared-nothing worker threads through a bounded work queue. The IO
/// thread owns all per-connection state (inbound line buffer, parsed
/// request lines, outbound reply buffer); workers own only compute: each
/// worker keeps its ServeWorkspace, its latency ring, and a cached
/// shared_ptr lease on the current model generation (re-resolved
/// lock-free when ModelRegistry::generation() moves), so the
/// steady-state request path touches no shared mutable state. A
/// connection has at most one dispatched batch in flight, so replies
/// come back in request order and pipelined streams stay bit-identical
/// to the batch oracle. Admission control sheds with a 503-style
/// `{"ok":false,"error":...,"code":503}` line when
/// `Options::max_connections` open connections are already admitted or
/// accept() hits fd exhaustion (EMFILE reserve-fd parachute); a full
/// work queue is *backpressure* (the IO thread holds parsed lines and
/// retries after each completion), never a shed. Within a connection
/// requests are pipelined: every complete line of a dispatched batch is
/// answered into one buffer flushed in chunks of at most ~256 KiB, with
/// EPOLLOUT-driven draining — a reader that never drains its socket hits
/// the slow-consumer policy (max_outbound_bytes cap, write-progress
/// deadline) instead of growing a buffer or blocking a worker. Idle and
/// slowloris connections cost one fd and a few hundred bytes, never a
/// worker: read deadlines are enforced by the IO loop's sweep, and the
/// idle clock only advances on complete non-empty request lines.
///
/// Hot reload: InstallReloadSignalHandler() latches SIGHUP into a flag
/// that listener and workers poll between accepts/reads; the swap itself
/// is ModelRegistry::ReloadAll, so in-flight requests drain on the old
/// mapping and workers pick up the new generation at their next request —
/// no stop-the-world pause, and no request ever observes a torn model
/// (each request resolves its model lease exactly once). See
/// docs/OPERATIONS.md for the walkthrough.
class RequestServer {
 public:
  /// \brief Tunables of a server instance.
  struct Options {
    /// Per-request serving defaults (m, min_score, tile size); a request's
    /// own fields override m and min_score.
    ServeOptions serve;
    /// Fold-in solver settings for `history` requests.
    FoldInOptions fold_in;
    /// Default refresh sweeps of an `update` retrain (a request's own
    /// "sweeps" field overrides). A handful suffices: the old factors are
    /// already near-stationary (see core/incremental.h).
    uint32_t update_sweeps = 5;
    /// Write-ahead journal every `update` verb to
    /// `<model>.update.journal` (fsynced before the retrain starts) so an
    /// acked update survives a crash anywhere in the pipeline — see
    /// serving/journal.h and RecoverJournal(). Off restores the PR 6
    /// fire-and-forget behavior (updates die with the process if the
    /// artifact rename has not happened, and applied deltas are forgotten
    /// on restart).
    bool update_journal = true;
    /// Latency samples kept per worker for the p50/p99 report.
    size_t latency_window = 4096;
    /// TCP worker threads (0 = one per hardware thread, at least 1).
    size_t num_workers = 0;
    /// Depth of the IO-thread → worker dispatch queue (parsed request
    /// batches awaiting a worker). A full queue is backpressure, not
    /// shedding: the IO thread holds the connection's parsed lines and
    /// re-dispatches after the next completion.
    size_t accept_queue = 128;
    /// Open connections the epoll core admits before shedding new
    /// accepts with a 503-style reply (0 = unlimited — bounded only by
    /// the process fd limit, which the EMFILE parachute handles).
    size_t max_connections = 0;
    /// Slow-consumer policy: a connection whose outbound reply buffer
    /// exceeds this many bytes (because the peer never drains its
    /// socket) is dropped and counted in connections_slow_closed.
    size_t max_outbound_bytes = 8 << 20;
    /// Longest request line a connection may send before it is answered
    /// with a 413-style reply and closed. Generous for real requests (a
    /// full-catalog exclude list is well under it); its real job is
    /// keeping a newline-free byte stream from growing a worker's buffer
    /// until the process OOMs.
    size_t max_request_bytes = 1 << 20;
    /// IO deadline in milliseconds, enforced by the epoll loop's sweep:
    /// a connection with a nonempty outbound buffer that makes no write
    /// progress for this long is dropped (slow consumer), and the sweep
    /// itself ticks at this granularity (so idle expiry, shutdown drain,
    /// and deadline checks are noticed within one tick). 0 disables
    /// every deadline — idle reaping included — and the loop parks in
    /// epoll_wait until readiness (the stdio loop never has deadlines).
    uint32_t io_timeout_ms = 1000;
    /// Close a connection with a 408-style reply after this long without
    /// one complete request line (0 = never; also disabled when
    /// io_timeout_ms is 0, which turns the sweep off). Measured against
    /// completed non-empty request lines, not received bytes, so a
    /// slow-loris peer dribbling one byte per second is reaped on
    /// schedule despite staying technically active.
    uint32_t idle_timeout_ms = 30000;
    /// Backoff hint carried in 503 shed replies ("retry_after_ms"):
    /// clients honoring it (serving/loadgen.cc does) retry after this
    /// base delay with capped exponential backoff instead of hammering a
    /// full accept queue.
    uint32_t retry_after_ms = 50;
  };

  /// \brief Serves the models of `registry` (not owned; must outlive the
  /// server) with default Options.
  explicit RequestServer(ModelRegistry* registry);
  /// \brief Serves the models of `registry` (not owned; must outlive the
  /// server).
  RequestServer(ModelRegistry* registry, Options options);

  /// \brief Answers one JSON request line with one JSON response line
  /// (no trailing newline). Never throws; malformed input yields an
  /// "ok": false response. Serves on the caller's inline worker slot —
  /// NOT safe to call concurrently with itself or RunStdioLoop (the TCP
  /// pool uses separate per-worker slots and may run concurrently).
  std::string HandleLine(const std::string& line);

  /// \brief The `recommend` verb's structured core: top-`options.m` items
  /// for `user` of model `model_name` through the blocked scoring engine.
  /// `exclude_override` (ascending ids), when non-null, replaces the
  /// model's default training-row exclusion. Same thread-affinity rules
  /// as HandleLine.
  Result<std::vector<ScoredItem>> Recommend(
      const std::string& model_name, uint32_t user, const ServeOptions& options,
      const std::vector<uint32_t>* exclude_override = nullptr);

  /// \brief Reads request lines from `in` until EOF or a `quit` verb,
  /// writing one response line each to `out` (flushed per line; pending
  /// SIGHUP reloads are applied between requests). Single-threaded.
  void RunStdioLoop(std::istream& in, std::ostream& out);

  /// \brief Listens on 127.0.0.1:`port` (0 = kernel-assigned; see
  /// bound_port()) with backlog SOMAXCONN and serves connections on the
  /// epoll IO loop + worker pool with the same line protocol (a `quit`
  /// verb or client EOF ends that connection, not the server). Returns
  /// only on a socket setup error or, with `max_accepts` > 0, after that
  /// many connections have been accepted AND every open connection has
  /// finished (0 = serve forever) — the bounded form is how tests and
  /// the bench end the loop without signals.
  Status RunTcpLoop(uint16_t port, uint64_t max_accepts = 0);

  /// \brief The port RunTcpLoop is listening on, or 0 when it is not.
  /// With port=0 this is how callers learn the kernel-assigned port;
  /// it is published after listen() succeeds, so a client that reads a
  /// nonzero value can connect immediately.
  uint16_t bound_port() const {
    return bound_port_.load(std::memory_order_acquire);
  }

  /// \brief Current counters + exact merged latency percentiles.
  DaemonStatsSnapshot Stats() const;

  /// \brief True once a handled request asked to quit (stdio path).
  bool quit_requested() const { return quit_requested_; }

  /// \brief Worker threads the TCP loop will run (Options::num_workers
  /// resolved against the hardware).
  size_t num_workers() const { return num_tcp_workers_; }

  /// \brief Installs the process-wide SIGHUP handler that requests a
  /// hot reload (idempotent; async-signal-safe handler, it only sets a
  /// flag).
  static void InstallReloadSignalHandler();

  /// \brief Installs the process-wide SIGTERM/SIGINT handler that
  /// requests a graceful drain: the TCP loop stops accepting, every
  /// worker answers the complete requests it has already read, flushes,
  /// closes its connection, and RunTcpLoop returns OK after printing one
  /// final stats line to stderr (the stdio loop just stops reading).
  /// Idempotent; the handler only sets a flag. The drain latch is
  /// noticed within one Options::io_timeout_ms tick even by threads
  /// parked in read()/accept(); with deadlines disabled only the thread
  /// the signal lands on wakes promptly.
  static void InstallShutdownSignalHandler();

  /// \brief Latches a drain request programmatically — what the SIGTERM
  /// handler does, callable from tests.
  static void RequestShutdown();

  /// \brief True while a drain request is latched (the serving loop that
  /// exits on it consumes it).
  static bool ShutdownRequested();

  /// \brief Consumes a latched drain request, returning whether one was
  /// latched. The serving loop that exits on the latch calls this so a
  /// later loop in the same process can serve again — RunTcpLoop does it
  /// internally; FleetServer::RunLoop (which shares the same SIGTERM
  /// latch) and tests call it here.
  static bool ConsumeShutdownRequest();

  /// \brief Applies a pending SIGHUP reload if one is latched; returns
  /// whether a reload ran. Also callable directly (the `reload` verb).
  /// Thread-safe: the latch guarantees exactly one thread runs the swap.
  bool ConsumePendingReload();

  /// \brief Replays `<model>.update.journal` against the freshly loaded
  /// model: re-merges every committed update's deltas into the bound
  /// training matrix (rebinding it through the registry), resolves a
  /// trailing crash-windowed record by artifact fingerprint (replay it if
  /// its rename never happened, heal the missing commit if it did), and
  /// returns what was done. Call once per model after registry load and
  /// BEFORE serving; with no journal on disk this is a cheap no-op.
  /// Requires a bound dataset when the journal has records (the deltas
  /// extend the training matrix). Serialized on the update mutex.
  Result<JournalRecoveryStats> RecoverJournal(const std::string& model_name);

 private:
  /// Everything one serving thread owns: scratch buffers, its latency
  /// shard, and its cached model leases. Shared-nothing — exactly one
  /// thread touches a slot's non-atomic members at any time; the atomics
  /// are read lock-free by Stats(). Cacheline-aligned so adjacent
  /// workers' counters do not false-share.
  struct alignas(64) WorkerState {
    explicit WorkerState(size_t latency_window) : latency(latency_window) {}

    ServeWorkspace workspace;
    std::vector<uint32_t> exclude_scratch;
    std::vector<uint32_t> history_scratch;  // sanitized request history
    FoldInWorkspace fold_in;                // per-request fold-in solve
    std::string reply_batch;  // pipelined replies, one write per batch

    /// Model leases cached against the registry generation: a request
    /// resolves its model once, so a concurrent hot swap can never hand
    /// it factors from two generations.
    uint64_t seen_generation = 0;
    std::map<std::string, std::shared_ptr<const ServableModel>> leases;

    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> fold_in_requests{0};
    std::atomic<uint64_t> dropped_history_ids{0};
    std::atomic<uint64_t> shard_requests{0};
    LatencyRing latency;
  };

  /// What one applied `update` published.
  struct UpdateOutcome {
    uint32_t num_users = 0;
    uint32_t num_items = 0;
    uint32_t sweeps_run = 0;
    bool converged = false;
    /// Sharded updates only: how many shard files were rewritten and
    /// republished, and how many user rows were folded in afresh.
    bool sharded = false;
    uint32_t shards_touched = 0;
    uint32_t users_refreshed = 0;
  };

  WorkerState* InlineWorker() { return workers_.back().get(); }
  void RefreshLeases(WorkerState* w);
  std::shared_ptr<const ServableModel> LeaseModel(WorkerState* w,
                                                  const std::string& name);
  /// `*shard_out` (when non-null) reports which shard served the user:
  /// the shard index for a sharded binding, -1 for a monolithic store —
  /// so HandleRecommend can surface the shard hit without re-leasing.
  Result<std::vector<ScoredItem>> RecommendOn(
      WorkerState* w, const std::string& model_name, uint32_t user,
      const ServeOptions& options,
      const std::vector<uint32_t>* exclude_override,
      int64_t* shard_out = nullptr);
  std::string HandleLineOn(WorkerState* w, const std::string& line,
                           bool* quit);
  std::string HandleRecommend(WorkerState* w, const JsonValue& request);
  std::string HandleHistory(WorkerState* w, const JsonValue& history,
                            const std::string& model_name,
                            const ServeOptions& serve);
  std::string HandleUpdate(WorkerState* w, const JsonValue& request);
  Result<UpdateOutcome> ApplyUpdate(
      WorkerState* w, const std::string& model_name,
      const std::vector<std::pair<uint32_t, uint32_t>>& adds,
      uint32_t num_users, uint32_t num_items, uint32_t sweeps, uint64_t seed);
  Result<UpdateOutcome> ApplyShardedUpdate(
      const ServableModel& model, const std::string& model_name,
      const std::vector<std::pair<uint32_t, uint32_t>>& adds,
      uint32_t num_users, uint32_t num_items);
  Result<UpdateOutcome> RetrainAndPublish(
      const ServableModel& model, const std::string& model_name,
      const std::shared_ptr<const CsrMatrix>& updated_train, uint32_t users,
      uint32_t items, uint32_t sweeps, uint64_t seed, bool* published);
  std::string HandleModels();
  std::string HandlePing();
  std::string HandleStats();
  std::string HandleReload(WorkerState* w);
  std::string ErrorReply(WorkerState* w, const std::string& message);
  std::string CodedErrorReply(WorkerState* w, const std::string& message,
                              uint32_t code);

  /// The epoll IO loop lives in daemon.cc as a standalone struct (it owns
  /// all per-connection state and needs the private handlers + counters).
  friend struct RequestServerEpollCore;

  ModelRegistry* registry_;
  Options options_;
  size_t num_tcp_workers_ = 1;
  bool quit_requested_ = false;
  /// Construction instant; the `ping` verb's uptime_ms is measured from
  /// here, so a health prober can tell a long-lived replica from one
  /// that silently restarted between probes.
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();

  /// Slots [0, num_tcp_workers_) belong to the TCP pool; the extra slot
  /// at the back serves HandleLine/Recommend/RunStdioLoop callers. The
  /// vector itself is immutable after construction.
  std::vector<std::unique_ptr<WorkerState>> workers_;

  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> timed_out_{0};
  std::atomic<uint64_t> open_conns_{0};
  std::atomic<uint64_t> capped_{0};
  std::atomic<uint64_t> slow_closed_{0};
  std::atomic<uint64_t> accept_emfile_{0};
  std::atomic<uint64_t> peak_outbound_{0};
  std::atomic<uint64_t> updates_{0};
  std::atomic<uint64_t> journal_recovered_{0};
  std::atomic<uint64_t> journal_replays_{0};
  std::atomic<uint16_t> bound_port_{0};
  /// Serializes `update` rebuilds (materialize → retrain → persist →
  /// publish). Recommends never take it: they keep serving the current
  /// generation and drain onto the published one lease-by-lease.
  std::mutex update_mu_;
};

}  // namespace ocular

#endif  // OCULAR_SERVING_DAEMON_H_
