#ifndef OCULAR_SERVING_DAEMON_H_
#define OCULAR_SERVING_DAEMON_H_

#include <cstdint>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "serving/registry.h"
#include "serving/score_engine.h"

namespace ocular {

/// \brief Point-in-time serving statistics, as reported by the `stats`
/// verb.
struct DaemonStatsSnapshot {
  /// Requests answered (including failed ones).
  uint64_t requests_served = 0;
  /// Requests answered with "ok": false.
  uint64_t errors = 0;
  /// Hot reloads performed (SIGHUP or `reload` verb).
  uint64_t reloads = 0;
  /// Models currently loaded.
  size_t models_loaded = 0;
  /// Median request latency over the recent window, microseconds.
  double p50_latency_us = 0.0;
  /// 99th-percentile request latency over the recent window, microseconds.
  double p99_latency_us = 0.0;
};

/// \brief The request-serving core of the long-running daemon
/// (tools/ocular_served.cpp and the `ocular_cli serve` subcommand).
///
/// Speaks a newline-delimited JSON protocol — one request object per input
/// line, one response object per output line — over stdin/stdout
/// (RunStdioLoop) or a loopback TCP socket (RunTcpLoop). Requests:
///
///   {"cmd":"recommend","model":"default","user":3,"m":10}
///   {"cmd":"recommend","model":"default","user":3,"exclude":[1,7]}
///   {"cmd":"models"}      — loaded models and their shapes
///   {"cmd":"stats"}       — DaemonStatsSnapshot as JSON
///   {"cmd":"reload"}      — hot-reload every model (same path as SIGHUP)
///   {"cmd":"quit"}        — end the session
///
/// Responses always carry "ok"; failures add "error" and never kill the
/// loop. `recommend` serves through the PR 3 blocked engine (ServeTopM)
/// out of a reusable ServeWorkspace, excluding the user's training row by
/// default (an explicit "exclude" array overrides it). Rankings are
/// bit-identical to RecommendForAllUsers on the same model and exclusions.
///
/// Hot reload: InstallReloadSignalHandler() latches SIGHUP into a flag the
/// loops poll between requests; the swap itself is
/// ModelRegistry::ReloadAll, so in-flight requests drain on the old
/// mapping. See docs/OPERATIONS.md for the walkthrough.
class RequestServer {
 public:
  /// \brief Tunables of a server instance.
  struct Options {
    /// Per-request serving defaults (m, min_score, tile size); a request's
    /// own fields override m and min_score.
    ServeOptions serve;
    /// Latency samples kept for the p50/p99 report (ring buffer).
    size_t latency_window = 4096;
  };

  /// \brief Serves the models of `registry` (not owned; must outlive the
  /// server) with default Options.
  explicit RequestServer(ModelRegistry* registry);
  /// \brief Serves the models of `registry` (not owned; must outlive the
  /// server).
  RequestServer(ModelRegistry* registry, Options options);

  /// \brief Answers one JSON request line with one JSON response line
  /// (no trailing newline). Never throws; malformed input yields an
  /// "ok": false response.
  std::string HandleLine(const std::string& line);

  /// \brief The `recommend` verb's structured core: top-`options.m` items
  /// for `user` of model `model_name` through the blocked scoring engine.
  /// `exclude_override` (ascending ids), when non-null, replaces the
  /// model's default training-row exclusion.
  Result<std::vector<ScoredItem>> Recommend(
      const std::string& model_name, uint32_t user, const ServeOptions& options,
      const std::vector<uint32_t>* exclude_override = nullptr);

  /// \brief Reads request lines from `in` until EOF or a `quit` verb,
  /// writing one response line each to `out` (flushed per line; pending
  /// SIGHUP reloads are applied between requests).
  void RunStdioLoop(std::istream& in, std::ostream& out);

  /// \brief Listens on 127.0.0.1:`port` and serves one connection at a
  /// time with the same line protocol (a `quit` verb or client EOF ends
  /// the connection, not the server). Returns only on a socket setup
  /// error or after `max_connections` > 0 connections (0 = serve
  /// forever) — the latter is how tests bound the loop.
  Status RunTcpLoop(uint16_t port, uint64_t max_connections = 0);

  /// \brief Current counters + latency percentiles.
  DaemonStatsSnapshot Stats() const;

  /// \brief True once a handled request asked to quit.
  bool quit_requested() const { return quit_requested_; }

  /// \brief Installs the process-wide SIGHUP handler that requests a
  /// hot reload (idempotent; async-signal-safe handler, it only sets a
  /// flag).
  static void InstallReloadSignalHandler();

  /// \brief Applies a pending SIGHUP reload if one is latched; returns
  /// whether a reload ran. Also callable directly (the `reload` verb).
  bool ConsumePendingReload();

 private:
  std::string HandleRecommend(const JsonValue& request);
  std::string HandleModels();
  std::string HandleStats();
  std::string HandleReload();
  std::string ErrorReply(const std::string& message);
  void RecordLatency(double micros);
  void ServeConnection(int fd);

  ModelRegistry* registry_;
  Options options_;
  ServeWorkspace workspace_;
  std::vector<uint32_t> exclude_scratch_;
  bool quit_requested_ = false;

  mutable std::mutex stats_mu_;
  uint64_t requests_served_ = 0;
  uint64_t errors_ = 0;
  uint64_t reloads_ = 0;
  std::vector<double> latency_ring_;  // microseconds
  size_t latency_next_ = 0;
  size_t latency_count_ = 0;
};

}  // namespace ocular

#endif  // OCULAR_SERVING_DAEMON_H_
