#include "serving/fleet.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "common/json.h"
#include "common/strings.h"
#include "parallel/bounded_queue.h"
#include "serving/daemon.h"  // shared SIGTERM drain latch
#include "serving/net_util.h"
#include "serving/retry.h"

namespace ocular {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Extracts one complete line from `*buffer` (newline stripped).
bool TakeLine(std::string* buffer, std::string* line) {
  const size_t newline = buffer->find('\n');
  if (newline == std::string::npos) return false;
  line->assign(*buffer, 0, newline);
  buffer->erase(0, newline + 1);
  return true;
}

enum class WaitOutcome { kLine, kTimeout, kFailed };

/// Waits up to `timeout_ms` for one complete reply line on `fd`,
/// buffering surplus bytes in `*buffer` across calls. poll() owns the
/// timing (the socket's SO_RCVTIMEO is only a backstop), so a caller
/// can wait a hedge threshold that is much shorter than the I/O
/// deadline without reconfiguring the socket per request.
WaitOutcome WaitForLine(int fd, std::string* buffer, uint32_t timeout_ms,
                        std::string* line) {
  const int64_t deadline = SteadyNowMs() + timeout_ms;
  for (;;) {
    if (TakeLine(buffer, line)) return WaitOutcome::kLine;
    if (buffer->size() >= net::kDefaultMaxLineBytes) {
      return WaitOutcome::kFailed;  // newline-free garbage stream
    }
    const int64_t remaining = deadline - SteadyNowMs();
    if (remaining <= 0) return WaitOutcome::kTimeout;
    struct pollfd p;
    p.fd = fd;
    p.events = POLLIN;
    p.revents = 0;
    const int pr = ::poll(&p, 1, static_cast<int>(
                                     std::min<int64_t>(remaining, 60'000)));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return WaitOutcome::kFailed;
    }
    if (pr == 0) continue;  // deadline re-checked at the top
    char chunk[16384];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return WaitOutcome::kFailed;
    }
    if (n == 0) return WaitOutcome::kFailed;  // EOF mid-reply
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

std::string FleetErrorReply(const std::string& message, uint32_t code,
                            uint64_t retry_after_ms = 0) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(false);
  w.Key("error");
  w.String(message);
  if (code != 0) {
    w.Key("code");
    w.UInt(code);
  }
  if (retry_after_ms != 0) {
    w.Key("retry_after_ms");
    w.UInt(retry_after_ms);
  }
  w.EndObject();
  return w.str();
}

constexpr char kPingLine[] = "{\"cmd\":\"ping\"}";

}  // namespace

const char* ReplicaStateName(ReplicaState state) {
  switch (state) {
    case ReplicaState::kHealthy:
      return "healthy";
    case ReplicaState::kEjected:
      return "ejected";
    case ReplicaState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

int64_t ReplicaHealth::ReopenDelayMs() const {
  const uint32_t shift =
      reopen_round_ > 0 ? std::min<uint32_t>(reopen_round_ - 1, 10) : 0;
  return static_cast<int64_t>(
      std::min<uint64_t>(options_.reopen_cap_ms,
                         static_cast<uint64_t>(options_.reopen_after_ms)
                             << shift));
}

void ReplicaHealth::OnSuccess(int64_t now_ms) {
  switch (state_) {
    case ReplicaState::kHealthy:
      consecutive_failures_ = 0;
      break;
    case ReplicaState::kHalfOpen:
      state_ = ReplicaState::kHealthy;
      ++readmissions_;
      consecutive_failures_ = 0;
      reopen_round_ = 0;
      soft_until_ms_ = 0;
      break;
    case ReplicaState::kEjected:
      // Stale report: an in-flight request that resolved against a
      // replica ejected since. Readmission goes through a half-open
      // probe only, so a lucky straggler cannot readmit a flapping
      // replica out of order.
      break;
  }
  (void)now_ms;
}

void ReplicaHealth::OnFailure(int64_t now_ms) {
  switch (state_) {
    case ReplicaState::kHealthy:
      if (++consecutive_failures_ >= options_.fail_threshold) {
        state_ = ReplicaState::kEjected;
        ++ejections_;
        reopen_round_ = 1;
        reopen_at_ms_ = now_ms + ReopenDelayMs();
      }
      break;
    case ReplicaState::kHalfOpen:
      // The trial probe failed: same outage, not a new ejection — the
      // counter stays put so integration drills can assert it exactly —
      // but the reopen delay doubles so a dead replica is probed ever
      // more lazily.
      state_ = ReplicaState::kEjected;
      ++reopen_round_;
      reopen_at_ms_ = now_ms + ReopenDelayMs();
      break;
    case ReplicaState::kEjected:
      break;  // stale report
  }
}

void ReplicaHealth::OnShed(int64_t now_ms, uint64_t retry_after_ms) {
  // Soft ejection: alive and well-behaved, just overloaded. Honor the
  // window it asked for (never shrinking one already in force) and
  // leave the failure count alone.
  const int64_t until =
      now_ms + static_cast<int64_t>(retry::ClampRetryAfterMs(retry_after_ms));
  soft_until_ms_ = std::max(soft_until_ms_, until);
}

bool ReplicaHealth::MaybeHalfOpen(int64_t now_ms) {
  if (state_ != ReplicaState::kEjected || now_ms < reopen_at_ms_) {
    return false;
  }
  state_ = ReplicaState::kHalfOpen;
  return true;
}

void FleetRouteOrder(uint64_t key, uint32_t num_replicas,
                     std::vector<uint32_t>* out) {
  // Rendezvous hashing: weight every (key, replica) pair independently
  // and sort descending. 64 bits of weight make ties effectively
  // impossible; the index tiebreak keeps the order total anyway.
  std::vector<std::pair<uint64_t, uint32_t>> weighted;
  weighted.reserve(num_replicas);
  for (uint32_t r = 0; r < num_replicas; ++r) {
    weighted.emplace_back(
        Mix64(key * 0x9e3779b97f4a7c15ULL ^
              (static_cast<uint64_t>(r) + 1) * 0xbf58476d1ce4e5b9ULL),
        r);
  }
  std::sort(weighted.begin(), weighted.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (const auto& [weight, r] : weighted) out->push_back(r);
}

/// Everything one front-tier thread owns: its keep-alive backend
/// connections (one per replica, connected on demand, closed on any
/// failure so the next request starts clean) and its reply batch.
/// Shared-nothing, like the daemon's WorkerState.
struct FleetServer::WorkerSlot {
  struct Backend {
    int fd = -1;
    std::string buffer;  // read-ahead bytes of this replica's stream
  };
  std::vector<Backend> backends;
  std::string reply_batch;
  std::string send_scratch;
  std::vector<uint32_t> order_scratch;
  std::vector<uint32_t> routable_scratch;

  void CloseAll() {
    for (Backend& b : backends) {
      if (b.fd >= 0) ::close(b.fd);
      b.fd = -1;
      b.buffer.clear();
    }
  }
};

FleetServer::FleetServer(Options options) : options_(std::move(options)) {
  const size_t n = options_.replicas.size();
  health_.assign(n, ReplicaHealth(options_.health));
  replica_forwards_.assign(n, 0);
  replica_failures_.assign(n, 0);
  // Pool slots, then the inline HandleLine slot, then the prober's.
  for (size_t i = 0; i < options_.num_workers + 2; ++i) {
    auto slot = std::make_unique<WorkerSlot>();
    slot->backends.resize(n);
    slots_.push_back(std::move(slot));
  }
}

FleetServer::~FleetServer() {
  for (auto& slot : slots_) slot->CloseAll();
}

int64_t FleetServer::NowMs() const { return SteadyNowMs(); }

bool FleetServer::EnsureBackend(WorkerSlot* w, uint32_t replica) {
  WorkerSlot::Backend& b = w->backends[replica];
  if (b.fd >= 0) {
    // Pool hygiene: a kept-alive connection with unsolicited pending
    // bytes (an idle-reap 408 the replica sent before closing) or an EOF
    // would pair a stale line with the next request and desync the
    // stream — recycle it instead of reusing it.
    struct pollfd pfd;
    pfd.fd = b.fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (!b.buffer.empty() || ::poll(&pfd, 1, 0) != 0) {
      CloseBackend(w, replica);
    }
  }
  if (b.fd >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.io_timeout_ms > 0) {
    // Backstop deadlines; per-request timing is poll()-driven
    // (WaitForLine), these only bound a send against a wedged replica.
    struct timeval tv;
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(options_.io_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.replicas[replica]);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  b.fd = fd;
  b.buffer.clear();
  return true;
}

void FleetServer::CloseBackend(WorkerSlot* w, uint32_t replica) {
  WorkerSlot::Backend& b = w->backends[replica];
  if (b.fd >= 0) ::close(b.fd);
  b.fd = -1;
  b.buffer.clear();
}

bool FleetServer::SendRequest(WorkerSlot* w, uint32_t replica,
                              const std::string& line) {
  // Injected routing failure ("fleet.route"): the forward is dropped
  // before any byte goes out — indistinguishable from a replica that
  // reset the connection, which is exactly the failover drill.
  if (fault::Maybe("fleet.route")) {
    CloseBackend(w, replica);
    return false;
  }
  if (!EnsureBackend(w, replica)) return false;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    ++replica_forwards_[replica];
  }
  w->send_scratch.assign(line);
  w->send_scratch.push_back('\n');
  if (!net::SendAll(w->backends[replica].fd, w->send_scratch.data(),
                    w->send_scratch.size())) {
    CloseBackend(w, replica);
    return false;
  }
  return true;
}

FleetServer::ForwardOutcome FleetServer::ClassifyReply(
    WorkerSlot* w, uint32_t replica, const std::string& reply,
    uint64_t* shed_hint_ms) {
  // Every daemon reply is a JSON object; anything else means the stream
  // is torn or the peer is not speaking the protocol — treat it as a
  // hard failure and start the next request on a fresh connection.
  if (!StartsWith(reply, "{")) {
    CloseBackend(w, replica);
    return ForwardOutcome::kFailed;
  }
  if (retry::ParseShedReply(reply, shed_hint_ms)) {
    // A replica sheds at accept time and closes right after the 503, so
    // this connection is done either way.
    CloseBackend(w, replica);
    return ForwardOutcome::kShed;
  }
  return ForwardOutcome::kReply;
}

FleetServer::ForwardOutcome FleetServer::ForwardOnce(
    WorkerSlot* w, uint32_t replica, const std::string& line,
    uint32_t timeout_ms, std::string* reply, uint64_t* shed_hint_ms) {
  // A pooled connection can die legitimately between requests (idle
  // reap, replica restart on the same port), so a torn stream on a
  // REUSED connection earns one fresh reconnect before it counts
  // against the replica's health. A fresh-connection failure — and any
  // deadline, which is real lateness — does not.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool reused = w->backends[replica].fd >= 0;
    if (!SendRequest(w, replica, line)) {
      if (reused && attempt == 0) continue;
      return ForwardOutcome::kFailed;
    }
    WorkerSlot::Backend& b = w->backends[replica];
    const WaitOutcome wait = WaitForLine(b.fd, &b.buffer, timeout_ms, reply);
    if (wait == WaitOutcome::kLine) {
      return ClassifyReply(w, replica, *reply, shed_hint_ms);
    }
    CloseBackend(w, replica);
    if (wait == WaitOutcome::kFailed && reused && attempt == 0) continue;
    return ForwardOutcome::kFailed;
  }
  return ForwardOutcome::kFailed;
}

void FleetServer::ReportSuccess(uint32_t replica) {
  const int64_t now = NowMs();
  std::lock_guard<std::mutex> lock(health_mu_);
  const ReplicaState before = health_[replica].state();
  health_[replica].OnSuccess(now);
  if (before == ReplicaState::kHalfOpen &&
      health_[replica].state() == ReplicaState::kHealthy) {
    std::fprintf(stderr, "fleet: replica 127.0.0.1:%u readmitted\n",
                 options_.replicas[replica]);
  }
}

void FleetServer::ReportFailure(uint32_t replica) {
  const int64_t now = NowMs();
  std::lock_guard<std::mutex> lock(health_mu_);
  ++replica_failures_[replica];
  const ReplicaState before = health_[replica].state();
  health_[replica].OnFailure(now);
  const ReplicaState after = health_[replica].state();
  if (before == ReplicaState::kHealthy && after == ReplicaState::kEjected) {
    std::fprintf(stderr,
                 "fleet: replica 127.0.0.1:%u ejected after %u consecutive "
                 "failures (half-open probe in %lld ms)\n",
                 options_.replicas[replica],
                 health_[replica].consecutive_failures(),
                 static_cast<long long>(health_[replica].reopen_at_ms() - now));
  } else if (before == ReplicaState::kHalfOpen &&
             after == ReplicaState::kEjected) {
    std::fprintf(stderr,
                 "fleet: replica 127.0.0.1:%u half-open probe failed, still "
                 "ejected (next probe in %lld ms)\n",
                 options_.replicas[replica],
                 static_cast<long long>(health_[replica].reopen_at_ms() - now));
  }
}

void FleetServer::ReportShed(uint32_t replica, uint64_t retry_after_ms) {
  const int64_t now = NowMs();
  std::lock_guard<std::mutex> lock(health_mu_);
  health_[replica].OnShed(now, retry_after_ms);
  std::fprintf(stderr,
               "fleet: replica 127.0.0.1:%u shedding, routing around for "
               "%llu ms\n",
               options_.replicas[replica],
               static_cast<unsigned long long>(
                   retry::ClampRetryAfterMs(retry_after_ms)));
}

std::string FleetServer::NoHealthyReply() {
  // Never hang a client on an empty rotation: answer 503 now, with a
  // hint derived from the soonest any replica can return (end of a
  // soft-shed window, an ejected replica's reopen time, or one probe
  // tick for a half-open trial already underway).
  int64_t best = -1;
  {
    const int64_t now = NowMs();
    std::lock_guard<std::mutex> lock(health_mu_);
    for (const ReplicaHealth& h : health_) {
      int64_t eta = 0;
      switch (h.state()) {
        case ReplicaState::kHealthy:
          eta = std::max<int64_t>(h.soft_until_ms() - now, 0);
          break;
        case ReplicaState::kEjected:
          eta = std::max<int64_t>(h.reopen_at_ms() - now, 1);
          break;
        case ReplicaState::kHalfOpen:
          eta = options_.probe_interval_ms;
          break;
      }
      if (best < 0 || eta < best) best = eta;
    }
  }
  uint64_t hint = options_.retry_after_ms;
  if (best > 0) hint = retry::ClampRetryAfterMs(static_cast<uint64_t>(best));
  return FleetErrorReply(
      "no healthy replica: fleet is shedding, retry later", 503, hint);
}

std::string FleetServer::FleetPingReply() {
  size_t healthy = 0;
  {
    const int64_t now = NowMs();
    std::lock_guard<std::mutex> lock(health_mu_);
    for (const ReplicaHealth& h : health_) {
      if (h.Routable(now)) ++healthy;
    }
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("fleet");
  w.Bool(true);
  w.Key("uptime_ms");
  w.UInt(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count()));
  w.Key("replicas");
  w.UInt(options_.replicas.size());
  w.Key("healthy");
  w.UInt(healthy);
  w.EndObject();
  return w.str();
}

void SumReplicaTotals(FleetStatsSnapshot* s) {
  s->ejections = 0;
  s->readmissions = 0;
  for (const FleetReplicaStats& rs : s->replicas) {
    s->ejections += rs.ejections;
    s->readmissions += rs.readmissions;
  }
}

std::string RenderFleetStats(const FleetStatsSnapshot& s) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("fleet");
  w.Bool(true);
  w.Key("requests_proxied");
  w.UInt(s.requests_proxied);
  w.Key("failovers");
  w.UInt(s.failovers);
  w.Key("hedges_sent");
  w.UInt(s.hedges_sent);
  w.Key("hedges_won");
  w.UInt(s.hedges_won);
  w.Key("no_healthy_503s");
  w.UInt(s.no_healthy_503s);
  w.Key("rejected_verbs");
  w.UInt(s.rejected_verbs);
  w.Key("probes_sent");
  w.UInt(s.probes_sent);
  w.Key("probe_failures");
  w.UInt(s.probe_failures);
  w.Key("connections_shed");
  w.UInt(s.connections_shed);
  w.Key("ejections");
  w.UInt(s.ejections);
  w.Key("readmissions");
  w.UInt(s.readmissions);
  w.Key("replicas");
  w.BeginArray();
  for (const FleetReplicaStats& rs : s.replicas) {
    w.BeginObject();
    w.Key("port");
    w.UInt(rs.port);
    w.Key("state");
    w.String(ReplicaStateName(rs.state));
    w.Key("forwards");
    w.UInt(rs.forwards);
    w.Key("failures");
    w.UInt(rs.failures);
    w.Key("ejections");
    w.UInt(rs.ejections);
    w.Key("readmissions");
    w.UInt(rs.readmissions);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

FleetStatsSnapshot FleetServer::Stats() const {
  FleetStatsSnapshot s;
  s.requests_proxied = requests_proxied_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.hedges_sent = hedges_sent_.load(std::memory_order_relaxed);
  s.hedges_won = hedges_won_.load(std::memory_order_relaxed);
  s.no_healthy_503s = no_healthy_503s_.load(std::memory_order_relaxed);
  s.rejected_verbs = rejected_verbs_.load(std::memory_order_relaxed);
  s.probes_sent = probes_sent_.load(std::memory_order_relaxed);
  s.probe_failures = probe_failures_.load(std::memory_order_relaxed);
  s.connections_shed = shed_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(health_mu_);
  s.replicas.reserve(health_.size());
  for (size_t r = 0; r < health_.size(); ++r) {
    FleetReplicaStats rs;
    rs.port = options_.replicas[r];
    rs.state = health_[r].state();
    rs.forwards = replica_forwards_[r];
    rs.failures = replica_failures_[r];
    rs.ejections = health_[r].ejections();
    rs.readmissions = health_[r].readmissions();
    s.replicas.push_back(rs);
  }
  SumReplicaTotals(&s);
  return s;
}

std::string FleetServer::FleetStatsReply() { return RenderFleetStats(Stats()); }

std::string FleetServer::HedgedForward(WorkerSlot* w, const std::string& line,
                                       uint32_t primary, uint32_t hedge) {
  std::string reply;
  uint64_t shed_hint = options_.retry_after_ms;
  const auto forward_on_hedge = [&]() -> std::string {
    // The primary is out of the picture; the hedge replica carries the
    // bounded retry.
    const ForwardOutcome out = ForwardOnce(w, hedge, line,
                                           options_.io_timeout_ms, &reply,
                                           &shed_hint);
    if (out == ForwardOutcome::kReply) {
      ReportSuccess(hedge);
      failovers_.fetch_add(1, std::memory_order_relaxed);
      return reply;
    }
    if (out == ForwardOutcome::kShed) {
      ReportShed(hedge, shed_hint);
    } else {
      ReportFailure(hedge);
    }
    no_healthy_503s_.fetch_add(1, std::memory_order_relaxed);
    return NoHealthyReply();
  };

  if (!SendRequest(w, primary, line)) {
    ReportFailure(primary);
    return forward_on_hedge();
  }
  WorkerSlot::Backend& pb = w->backends[primary];
  // Give the primary its hedge window alone.
  WaitOutcome wait =
      WaitForLine(pb.fd, &pb.buffer, options_.hedge_after_ms, &reply);
  if (wait == WaitOutcome::kLine) {
    const ForwardOutcome out = ClassifyReply(w, primary, reply, &shed_hint);
    if (out == ForwardOutcome::kReply) {
      ReportSuccess(primary);
      return reply;
    }
    if (out == ForwardOutcome::kShed) {
      ReportShed(primary, shed_hint);
    } else {
      ReportFailure(primary);
    }
    return forward_on_hedge();
  }
  if (wait == WaitOutcome::kFailed) {
    CloseBackend(w, primary);
    ReportFailure(primary);
    return forward_on_hedge();
  }

  // Hedge window expired with the primary silent: issue the copy and
  // race the two replicas for the first complete reply. Safe because
  // the forwarded verbs are idempotent reads — both replicas may
  // execute the request; only one reply reaches the client.
  hedges_sent_.fetch_add(1, std::memory_order_relaxed);
  bool hedge_up = SendRequest(w, hedge, line);
  if (!hedge_up) ReportFailure(hedge);
  bool primary_up = true;
  const int64_t deadline = SteadyNowMs() + options_.io_timeout_ms;
  while ((primary_up || hedge_up) && SteadyNowMs() < deadline) {
    // Buffered-line check first: a reply may already be framed.
    for (const bool is_hedge : {false, true}) {
      const uint32_t r = is_hedge ? hedge : primary;
      const bool up = is_hedge ? hedge_up : primary_up;
      if (!up) continue;
      WorkerSlot::Backend& b = w->backends[r];
      if (!TakeLine(&b.buffer, &reply)) continue;
      const ForwardOutcome out = ClassifyReply(w, r, reply, &shed_hint);
      if (out == ForwardOutcome::kReply) {
        ReportSuccess(r);
        // Cancel-by-close the loser: its reply (if it ever comes) would
        // otherwise sit first in the keep-alive stream and desync every
        // request after it.
        if (is_hedge) {
          hedges_won_.fetch_add(1, std::memory_order_relaxed);
          if (primary_up) CloseBackend(w, primary);
        } else {
          if (hedge_up) CloseBackend(w, hedge);
        }
        return reply;
      }
      if (out == ForwardOutcome::kShed) {
        ReportShed(r, shed_hint);
      } else {
        ReportFailure(r);
      }
      if (is_hedge) {
        hedge_up = false;
      } else {
        primary_up = false;
      }
    }
    if (!primary_up && !hedge_up) break;
    struct pollfd pfds[2];
    nfds_t nfds = 0;
    int primary_slot = -1;
    int hedge_slot = -1;
    if (primary_up) {
      primary_slot = static_cast<int>(nfds);
      pfds[nfds].fd = w->backends[primary].fd;
      pfds[nfds].events = POLLIN;
      pfds[nfds].revents = 0;
      ++nfds;
    }
    if (hedge_up) {
      hedge_slot = static_cast<int>(nfds);
      pfds[nfds].fd = w->backends[hedge].fd;
      pfds[nfds].events = POLLIN;
      pfds[nfds].revents = 0;
      ++nfds;
    }
    const int64_t remaining = deadline - SteadyNowMs();
    if (remaining <= 0) break;
    const int pr = ::poll(pfds, nfds, static_cast<int>(remaining));
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) break;  // overall deadline
    for (const bool is_hedge : {false, true}) {
      const int slot = is_hedge ? hedge_slot : primary_slot;
      if (slot < 0 || pfds[slot].revents == 0) continue;
      const uint32_t r = is_hedge ? hedge : primary;
      WorkerSlot::Backend& b = w->backends[r];
      char chunk[16384];
      const ssize_t n = ::read(b.fd, chunk, sizeof(chunk));
      if (n > 0) {
        b.buffer.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK)) {
        continue;
      }
      CloseBackend(w, r);
      ReportFailure(r);
      if (is_hedge) {
        hedge_up = false;
      } else {
        primary_up = false;
      }
    }
  }
  // Both legs died or the whole deadline elapsed with no complete reply.
  if (primary_up) {
    CloseBackend(w, primary);
    ReportFailure(primary);
  }
  if (hedge_up) {
    CloseBackend(w, hedge);
    ReportFailure(hedge);
  }
  no_healthy_503s_.fetch_add(1, std::memory_order_relaxed);
  return NoHealthyReply();
}

std::string FleetServer::ProxyRouted(WorkerSlot* w, const std::string& line,
                                     const std::vector<uint32_t>& order) {
  // Routability snapshot, in route order. Taken once per request: a
  // state flip mid-request is caught by the forward itself failing.
  std::vector<uint32_t>& routable = w->routable_scratch;
  routable.clear();
  {
    const int64_t now = NowMs();
    std::lock_guard<std::mutex> lock(health_mu_);
    for (const uint32_t r : order) {
      if (health_[r].Routable(now)) routable.push_back(r);
    }
  }
  if (routable.empty()) {
    no_healthy_503s_.fetch_add(1, std::memory_order_relaxed);
    return NoHealthyReply();
  }
  if (options_.hedge_after_ms > 0 && routable.size() >= 2) {
    return HedgedForward(w, line, routable[0], routable[1]);
  }
  // Primary plus at most one bounded retry on the next healthy replica
  // in hash order. One retry is the sweet spot: it absorbs any single
  // replica failure, and a fleet-wide outage degenerates to two fast
  // failures and a 503, not a retry storm.
  const size_t attempts = std::min<size_t>(2, routable.size());
  std::string reply;
  uint64_t shed_hint = options_.retry_after_ms;
  for (size_t i = 0; i < attempts; ++i) {
    const uint32_t r = routable[i];
    const ForwardOutcome out =
        ForwardOnce(w, r, line, options_.io_timeout_ms, &reply, &shed_hint);
    if (out == ForwardOutcome::kReply) {
      ReportSuccess(r);
      if (i > 0) failovers_.fetch_add(1, std::memory_order_relaxed);
      return reply;
    }
    if (out == ForwardOutcome::kShed) {
      ReportShed(r, shed_hint);
    } else {
      ReportFailure(r);
    }
  }
  no_healthy_503s_.fetch_add(1, std::memory_order_relaxed);
  return NoHealthyReply();
}

std::string FleetServer::ProxyOne(WorkerSlot* w, const std::string& line,
                                  bool* quit) {
  requests_proxied_.fetch_add(1, std::memory_order_relaxed);
  auto parsed = JsonValue::Parse(line);
  std::string cmd = "recommend";
  bool has_user = false;
  uint64_t user_key = 0;
  if (parsed.ok() && parsed->is_object()) {
    if (const JsonValue* c = parsed->Find("cmd");
        c != nullptr && c->is_string()) {
      cmd = c->string();
    }
    if (const JsonValue* u = parsed->Find("user");
        u != nullptr && u->is_number() && u->number() >= 0) {
      has_user = true;
      user_key = static_cast<uint64_t>(u->number());
    }
    if (cmd == "ping") return FleetPingReply();
    if (cmd == "stats") return FleetStatsReply();
    if (cmd == "quit") {
      *quit = true;
      JsonWriter writer;
      writer.BeginObject();
      writer.Key("ok");
      writer.Bool(true);
      writer.Key("bye");
      writer.Bool(true);
      writer.EndObject();
      return writer.str();
    }
    if (cmd == "update" || cmd == "reload") {
      // Forwarding a mutation to ONE replica would silently fork the
      // fleet's models — replies would stop being bit-identical across
      // replicas, the core serving contract. Mutations go to each
      // replica directly (see the OPERATIONS.md fleet runbook).
      rejected_verbs_.fetch_add(1, std::memory_order_relaxed);
      return FleetErrorReply(
          "'" + cmd +
              "' is not served through the fleet front tier: apply it to "
              "each replica directly, or it would fork the fleet's models",
          501);
    }
  }
  // Everything else is forwarded verbatim — including unparseable lines
  // (the replica's parser owns the error shape) and unknown verbs, so a
  // fleet client sees exactly the replies a single-daemon client would.
  const uint32_t n = static_cast<uint32_t>(options_.replicas.size());
  std::vector<uint32_t>& order = w->order_scratch;
  order.clear();
  if (has_user) {
    FleetRouteOrder(user_key, n, &order);
  } else {
    // User-less verbs (history fold-in, models, garbage): no cache
    // affinity to preserve, spread round-robin.
    const uint64_t start =
        rr_cursor_.fetch_add(1, std::memory_order_relaxed) % n;
    for (uint32_t i = 0; i < n; ++i) {
      order.push_back(static_cast<uint32_t>((start + i) % n));
    }
  }
  return ProxyRouted(w, line, order);
}

std::string FleetServer::HandleLine(const std::string& line) {
  bool quit = false;
  // The inline slot sits right after the pool slots.
  return ProxyOne(slots_[options_.num_workers].get(), line, &quit);
}

void FleetServer::ServeClientConnection(int fd, WorkerSlot* w) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.io_timeout_ms > 0) {
    // Same role as the daemon's connection deadlines: the receive
    // deadline is this connection's wakeup tick for the stop/drain
    // latches; the send deadline bounds a client that stopped draining.
    struct timeval tv;
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(options_.io_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  std::string buffer;
  char chunk[16384];
  bool connection_quit = false;
  while (!connection_quit) {
    if (stop_.load(std::memory_order_relaxed) ||
        RequestServer::ShutdownRequested()) {
      break;  // graceful: complete requests already read were answered
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // latch tick
      break;
    }
    if (n == 0) break;  // client EOF
    const size_t old_size = buffer.size();
    buffer.append(chunk, static_cast<size_t>(n));
    // Pipelining, daemon-style: answer every complete line in the
    // buffer, flush the replies batched.
    constexpr size_t kReplyFlushBytes = 256 << 10;
    w->reply_batch.clear();
    bool write_failed = false;
    size_t start = 0;
    size_t newline = buffer.find('\n', old_size);
    for (; newline != std::string::npos && !connection_quit && !write_failed;
         newline = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      bool quit = false;
      w->reply_batch += ProxyOne(w, line, &quit);
      w->reply_batch.push_back('\n');
      if (w->reply_batch.size() >= kReplyFlushBytes) {
        write_failed =
            !net::SendAll(fd, w->reply_batch.data(), w->reply_batch.size());
        w->reply_batch.clear();
      }
      if (quit) connection_quit = true;
    }
    buffer.erase(0, start);
    if (write_failed ||
        (!w->reply_batch.empty() &&
         !net::SendAll(fd, w->reply_batch.data(), w->reply_batch.size()))) {
      break;
    }
    if (buffer.size() >= options_.max_request_bytes) {
      const std::string reply =
          FleetErrorReply("request line exceeds " +
                              std::to_string(options_.max_request_bytes) +
                              " bytes",
                          413) +
          "\n";
      (void)net::SendAll(fd, reply.data(), reply.size());
      break;
    }
  }
  ::close(fd);
}

void FleetServer::ShedClientConnection(int fd) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  const std::string reply =
      FleetErrorReply("fleet overloaded: accept queue full, retry later", 503,
                      options_.retry_after_ms) +
      "\n";
  (void)net::SendAll(fd, reply.data(), reply.size());
  ::close(fd);
}

void FleetServer::ProbeReplica(uint32_t replica) {
  {
    const int64_t now = NowMs();
    std::lock_guard<std::mutex> lock(health_mu_);
    ReplicaHealth& h = health_[replica];
    if (h.state() == ReplicaState::kEjected) {
      if (!h.MaybeHalfOpen(now)) return;  // still waiting out the backoff
      std::fprintf(stderr,
                   "fleet: replica 127.0.0.1:%u half-open, probing\n",
                   options_.replicas[replica]);
    }
  }
  // kHealthy or kHalfOpen: one ping decides. The prober has its own
  // backend slot (the last one), so probes never contend with request
  // traffic for a connection.
  probes_sent_.fetch_add(1, std::memory_order_relaxed);
  WorkerSlot* w = slots_.back().get();
  std::string reply;
  uint64_t shed_hint = options_.retry_after_ms;
  const ForwardOutcome out =
      ForwardOnce(w, replica, kPingLine, options_.io_timeout_ms, &reply,
                  &shed_hint);
  switch (out) {
    case ForwardOutcome::kReply:
      ReportSuccess(replica);
      break;
    case ForwardOutcome::kShed:
      // An overloaded replica is alive; honor its window, don't eject.
      ReportShed(replica, shed_hint);
      break;
    case ForwardOutcome::kFailed:
      probe_failures_.fetch_add(1, std::memory_order_relaxed);
      ReportFailure(replica);
      break;
  }
}

void FleetServer::RunProber() {
  const uint32_t interval =
      std::max<uint32_t>(options_.probe_interval_ms, 10);
  while (!stop_.load(std::memory_order_relaxed) &&
         !RequestServer::ShutdownRequested()) {
    for (uint32_t r = 0; r < options_.replicas.size(); ++r) {
      if (stop_.load(std::memory_order_relaxed)) break;
      ProbeReplica(r);
    }
    // Sleep the interval in small ticks so Stop() is honored promptly
    // even with a lazy probe cadence.
    const int64_t wake = SteadyNowMs() + interval;
    while (SteadyNowMs() < wake &&
           !stop_.load(std::memory_order_relaxed) &&
           !RequestServer::ShutdownRequested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  slots_.back()->CloseAll();
}

Status FleetServer::RunLoop(uint16_t port, uint64_t max_connections) {
  if (options_.replicas.empty()) {
    return Status::InvalidArgument("fleet needs at least one replica");
  }
  stop_.store(false, std::memory_order_relaxed);
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback-only, like the daemon
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status st =
        Status::IOError(std::string("bind 127.0.0.1:") + std::to_string(port) +
                        ": " + std::strerror(errno));
    ::close(listener);
    return st;
  }
  if (::listen(listener, SOMAXCONN) != 0) {
    const Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listener);
    return st;
  }
  if (options_.io_timeout_ms > 0) {
    // The accept loop's wakeup tick for the stop/drain latches.
    struct timeval tv;
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(options_.io_timeout_ms % 1000) * 1000;
    ::setsockopt(listener, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  {
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    uint16_t actual = port;
    if (::getsockname(listener, reinterpret_cast<struct sockaddr*>(&bound),
                      &len) == 0) {
      actual = ntohs(bound.sin_port);
    }
    bound_port_.store(actual, std::memory_order_release);
  }

  BoundedQueue<int> pending(options_.accept_queue);
  std::vector<std::thread> pool;
  pool.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    WorkerSlot* w = slots_[i].get();
    pool.emplace_back([this, &pending, w] {
      int fd = -1;
      while (pending.Pop(&fd)) ServeClientConnection(fd, w);
      w->CloseAll();
    });
  }
  std::thread prober([this] { RunProber(); });

  Status status = Status::OK();
  uint64_t accepted = 0;
  while (max_connections == 0 || accepted < max_connections) {
    if (stop_.load(std::memory_order_relaxed) ||
        RequestServer::ShutdownRequested()) {
      break;  // graceful drain: stop accepting, workers finish and exit
    }
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      status =
          Status::IOError(std::string("accept: ") + std::strerror(errno));
      break;
    }
    ++accepted;
    if (!pending.TryPush(conn)) ShedClientConnection(conn);
  }
  pending.Close();
  for (std::thread& t : pool) t.join();
  stop_.store(true, std::memory_order_relaxed);  // release the prober
  prober.join();
  bound_port_.store(0, std::memory_order_release);
  ::close(listener);
  if (RequestServer::ConsumeShutdownRequest()) {
    std::fprintf(stderr, "fleet drained: %s\n", FleetStatsReply().c_str());
  }
  return status;
}

}  // namespace ocular
