#include "serving/daemon.h"

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>

namespace ocular {

namespace {

// SIGHUP latch. A signal handler may only touch async-signal-safe state;
// the actual reload runs on the serving thread between requests.
std::atomic<bool> g_pending_reload{false};

void OnSighup(int /*signum*/) {
  g_pending_reload.store(true, std::memory_order_relaxed);
}

// Reads a non-negative integer field, with bounds checking against
// `max_value`. Returns defaults when the field is absent.
Result<uint64_t> GetUIntField(const JsonValue& request, const char* key,
                              uint64_t def, uint64_t max_value) {
  const JsonValue* field = request.Find(key);
  if (field == nullptr) return def;
  if (!field->is_number() || field->number() < 0.0 ||
      field->number() != std::floor(field->number())) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a non-negative integer");
  }
  if (field->number() > static_cast<double>(max_value)) {
    return Status::InvalidArgument(std::string("'") + key + "' out of range");
  }
  return static_cast<uint64_t>(field->number());
}

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RequestServer::RequestServer(ModelRegistry* registry)
    : RequestServer(registry, Options()) {}

RequestServer::RequestServer(ModelRegistry* registry, Options options)
    : registry_(registry), options_(options) {
  latency_ring_.resize(std::max<size_t>(options_.latency_window, 1), 0.0);
  workspace_.Reserve(options_.serve.m, options_.serve.block_items);
}

void RequestServer::InstallReloadSignalHandler() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSighup;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: a SIGHUP arriving mid-accept/mid-read surfaces as EINTR
  // so the serving loop can apply the reload promptly.
  ::sigaction(SIGHUP, &sa, nullptr);
}

bool RequestServer::ConsumePendingReload() {
  if (!g_pending_reload.exchange(false, std::memory_order_relaxed)) {
    return false;
  }
  // Failed models keep their previous generation serving; surface the
  // failure (SIGHUP has no reply channel) and do not count it as a
  // performed reload, so stats can't report a stale model as refreshed.
  const Status status = registry_->ReloadAll();
  if (!status.ok()) {
    std::fprintf(stderr, "hot reload failed: %s\n",
                 status.ToString().c_str());
    return true;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++reloads_;
  return true;
}

Result<std::vector<ScoredItem>> RequestServer::Recommend(
    const std::string& model_name, uint32_t user, const ServeOptions& options,
    const std::vector<uint32_t>* exclude_override) {
  std::shared_ptr<const ServableModel> model = registry_->Get(model_name);
  if (model == nullptr) {
    return Status::NotFound("no model named '" + model_name + "'");
  }
  if (user >= model->store.num_users()) {
    return Status::OutOfRange("user " + std::to_string(user) +
                              " out of range (model has " +
                              std::to_string(model->store.num_users()) +
                              " users)");
  }
  std::span<const uint32_t> exclude = exclude_override != nullptr
                                          ? std::span<const uint32_t>(*exclude_override)
                                          : model->ExcludeRow(user);
  auto ranked =
      ServeTopM(*model->recommender, user, exclude, options, &workspace_);
  return std::vector<ScoredItem>(ranked.begin(), ranked.end());
}

std::string RequestServer::ErrorReply(const std::string& message) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(false);
  w.Key("error");
  w.String(message);
  w.EndObject();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++errors_;
  return w.str();
}

std::string RequestServer::HandleRecommend(const JsonValue& request) {
  std::string model_name = "default";
  if (const JsonValue* m = request.Find("model"); m != nullptr) {
    if (!m->is_string()) return ErrorReply("'model' must be a string");
    model_name = m->string();
  }
  auto user = GetUIntField(request, "user", 0, UINT32_MAX);
  if (!user.ok()) return ErrorReply(user.status().message());
  if (request.Find("user") == nullptr) {
    return ErrorReply("'user' is required");
  }
  auto m = GetUIntField(request, "m", options_.serve.m, UINT32_MAX);
  if (!m.ok()) return ErrorReply(m.status().message());

  ServeOptions serve = options_.serve;
  serve.m = static_cast<uint32_t>(*m);
  if (const JsonValue* ms = request.Find("min_score"); ms != nullptr) {
    if (!ms->is_number()) return ErrorReply("'min_score' must be a number");
    serve.min_score = ms->number();
  }

  const std::vector<uint32_t>* exclude_override = nullptr;
  if (const JsonValue* ex = request.Find("exclude"); ex != nullptr) {
    if (!ex->is_array()) {
      return ErrorReply("'exclude' must be an array of item ids");
    }
    exclude_scratch_.clear();
    for (const JsonValue& e : ex->array()) {
      if (!e.is_number() || e.number() < 0.0 ||
          e.number() != std::floor(e.number()) || e.number() > UINT32_MAX) {
        return ErrorReply("'exclude' entries must be item ids");
      }
      exclude_scratch_.push_back(static_cast<uint32_t>(e.number()));
    }
    std::sort(exclude_scratch_.begin(), exclude_scratch_.end());
    exclude_scratch_.erase(
        std::unique(exclude_scratch_.begin(), exclude_scratch_.end()),
        exclude_scratch_.end());
    exclude_override = &exclude_scratch_;
  }

  auto ranked = Recommend(model_name, static_cast<uint32_t>(*user), serve,
                          exclude_override);
  if (!ranked.ok()) return ErrorReply(ranked.status().ToString());

  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("model");
  w.String(model_name);
  w.Key("user");
  w.UInt(*user);
  w.Key("items");
  w.BeginArray();
  for (const ScoredItem& si : *ranked) {
    w.BeginObject();
    w.Key("item");
    w.UInt(si.item);
    w.Key("score");
    w.Double(si.score);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string RequestServer::HandleModels() {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("models");
  w.BeginArray();
  for (const std::string& name : registry_->Names()) {
    std::shared_ptr<const ServableModel> model = registry_->Get(name);
    if (model == nullptr) continue;  // raced with an unload
    w.BeginObject();
    w.Key("name");
    w.String(name);
    w.Key("algorithm");
    w.String(model->store.meta().algorithm);
    w.Key("users");
    w.UInt(model->store.num_users());
    w.Key("items");
    w.UInt(model->store.num_items());
    w.Key("k");
    w.UInt(model->store.k());
    w.Key("mapped_bytes");
    w.UInt(model->store.mapped_bytes());
    w.Key("path");
    w.String(model->store.path());
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string RequestServer::HandleStats() {
  const DaemonStatsSnapshot snapshot = Stats();
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("models_loaded");
  w.UInt(snapshot.models_loaded);
  w.Key("requests_served");
  w.UInt(snapshot.requests_served);
  w.Key("errors");
  w.UInt(snapshot.errors);
  w.Key("reloads");
  w.UInt(snapshot.reloads);
  w.Key("p50_latency_us");
  w.Double(snapshot.p50_latency_us);
  w.Key("p99_latency_us");
  w.Double(snapshot.p99_latency_us);
  w.EndObject();
  return w.str();
}

std::string RequestServer::HandleReload() {
  Status status = registry_->ReloadAll();
  if (!status.ok()) return ErrorReply(status.ToString());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++reloads_;
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("reloaded");
  w.UInt(registry_->size());
  w.EndObject();
  return w.str();
}

std::string RequestServer::HandleLine(const std::string& line) {
  const double start_us = NowMicros();
  std::string reply;
  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    reply = ErrorReply(parsed.status().ToString());
  } else if (!parsed->is_object()) {
    reply = ErrorReply("request must be a JSON object");
  } else {
    std::string cmd = "recommend";
    bool bad_cmd = false;
    if (const JsonValue* c = parsed->Find("cmd"); c != nullptr) {
      if (c->is_string()) {
        cmd = c->string();
      } else {
        bad_cmd = true;
      }
    }
    if (bad_cmd) {
      reply = ErrorReply("'cmd' must be a string");
    } else if (cmd == "recommend") {
      reply = HandleRecommend(*parsed);
    } else if (cmd == "models") {
      reply = HandleModels();
    } else if (cmd == "stats") {
      reply = HandleStats();
    } else if (cmd == "reload") {
      reply = HandleReload();
    } else if (cmd == "quit") {
      quit_requested_ = true;
      JsonWriter w;
      w.BeginObject();
      w.Key("ok");
      w.Bool(true);
      w.Key("bye");
      w.Bool(true);
      w.EndObject();
      reply = w.str();
    } else {
      reply = ErrorReply("unknown cmd '" + cmd + "'");
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++requests_served_;
  }
  RecordLatency(NowMicros() - start_us);
  return reply;
}

void RequestServer::RecordLatency(double micros) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  latency_ring_[latency_next_] = micros;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  latency_count_ = std::min(latency_count_ + 1, latency_ring_.size());
}

DaemonStatsSnapshot RequestServer::Stats() const {
  DaemonStatsSnapshot snapshot;
  snapshot.models_loaded = registry_->size();
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snapshot.requests_served = requests_served_;
    snapshot.errors = errors_;
    snapshot.reloads = reloads_;
    window.assign(latency_ring_.begin(),
                  latency_ring_.begin() +
                      static_cast<std::ptrdiff_t>(latency_count_));
  }
  if (!window.empty()) {
    auto percentile = [&window](double p) {
      const size_t idx = std::min(
          window.size() - 1,
          static_cast<size_t>(p * static_cast<double>(window.size() - 1)));
      std::nth_element(window.begin(),
                       window.begin() + static_cast<std::ptrdiff_t>(idx),
                       window.end());
      return window[idx];
    };
    snapshot.p50_latency_us = percentile(0.50);
    snapshot.p99_latency_us = percentile(0.99);
  }
  return snapshot;
}

void RequestServer::RunStdioLoop(std::istream& in, std::ostream& out) {
  std::string line;
  std::string partial;  // prefix extracted before an interrupted read
  while (!quit_requested_) {
    ConsumePendingReload();
    errno = 0;
    if (!std::getline(in, line)) {
      // A SIGHUP arriving while blocked in getline fails the stream with
      // EINTR (the handler is installed without SA_RESTART); that is a
      // reload request, not end of input — recover and keep serving. The
      // stream flags are not trustworthy here (libstdc++ reports the
      // interrupted read as eof), so the errno check decides, and the
      // C-stdio error state backing std::cin must be cleared too. Any
      // half-read line is carried over so the request stream stays
      // aligned.
      if (errno == EINTR) {
        partial += line;
        in.clear();
        if (&in == &std::cin) std::clearerr(stdin);
        continue;
      }
      break;
    }
    if (!partial.empty()) {
      line = partial + line;
      partial.clear();
    }
    if (line.empty()) continue;
    out << HandleLine(line) << '\n';
    out.flush();
  }
}

void RequestServer::ServeConnection(int fd) {
  // Framing bound against hostile clients: a "line" that exceeds this
  // without a newline drops the connection instead of growing the buffer
  // without limit. Generous for real requests (a full-catalog exclude
  // list is well under this).
  constexpr size_t kMaxRequestBytes = 4 << 20;
  std::string buffer;
  char chunk[4096];
  bool connection_quit = false;
  while (!connection_quit) {
    ConsumePendingReload();
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;  // signal (e.g. SIGHUP) — poll and retry
      break;
    }
    if (n == 0) break;  // client EOF
    // Everything before old_size was already scanned newline-free, so
    // each chunk is searched exactly once — framing stays linear in the
    // request size.
    const size_t old_size = buffer.size();
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    size_t newline = buffer.find('\n', old_size);
    for (; newline != std::string::npos && !connection_quit;
         newline = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string reply = HandleLine(line);
      reply.push_back('\n');
      size_t sent = 0;
      while (sent < reply.size()) {
        const ssize_t w =
            ::write(fd, reply.data() + sent, reply.size() - sent);
        if (w < 0) {
          if (errno == EINTR) continue;
          connection_quit = true;
          break;
        }
        sent += static_cast<size_t>(w);
      }
      if (quit_requested_) {
        // `quit` ends the connection; the next client gets a fresh session.
        quit_requested_ = false;
        connection_quit = true;
      }
    }
    buffer.erase(0, start);  // keep the newline-free tail
    if (buffer.size() > kMaxRequestBytes) {
      const std::string reply = ErrorReply("request line too long") + "\n";
      (void)!::write(fd, reply.data(), reply.size());
      break;
    }
  }
  ::close(fd);
}

Status RequestServer::RunTcpLoop(uint16_t port, uint64_t max_connections) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // serve localhost only
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status st =
        Status::IOError(std::string("bind 127.0.0.1:") + std::to_string(port) +
                        ": " + std::strerror(errno));
    ::close(listener);
    return st;
  }
  if (::listen(listener, 16) != 0) {
    const Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listener);
    return st;
  }
  uint64_t served = 0;
  while (max_connections == 0 || served < max_connections) {
    ConsumePendingReload();
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;  // SIGHUP — apply reload, keep accepting
      const Status st =
          Status::IOError(std::string("accept: ") + std::strerror(errno));
      ::close(listener);
      return st;
    }
    ServeConnection(conn);
    ++served;
  }
  ::close(listener);
  return Status::OK();
}

}  // namespace ocular
