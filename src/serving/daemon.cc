#include "serving/daemon.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <thread>

#include <cstdio>

#include "common/fault.h"
#include "common/fs_util.h"
#include "core/model_store.h"
#include "parallel/bounded_queue.h"
#include "serving/journal.h"
#include "serving/net_util.h"
#include "serving/render.h"

namespace ocular {

namespace {

// SIGHUP latch. A signal handler may only touch async-signal-safe state;
// the actual reload runs on a serving thread between requests.
std::atomic<bool> g_pending_reload{false};

void OnSighup(int /*signum*/) {
  g_pending_reload.store(true, std::memory_order_relaxed);
}

// SIGTERM/SIGINT drain latch. The signal may land on any thread; every
// serving loop polls the latch at its top, and parked reads/accepts wake
// either by EINTR (the handler thread) or by their receive deadline
// (everyone else — see Options::io_timeout_ms), so the whole process
// notices within one deadline tick.
std::atomic<bool> g_pending_shutdown{false};

void OnShutdownSignal(int /*signum*/) {
  g_pending_shutdown.store(true, std::memory_order_relaxed);
}

// Reads a non-negative integer field, with bounds checking against
// `max_value`. Returns defaults when the field is absent.
Result<uint64_t> GetUIntField(const JsonValue& request, const char* key,
                              uint64_t def, uint64_t max_value) {
  const JsonValue* field = request.Find(key);
  if (field == nullptr) return def;
  if (!field->is_number() || field->number() < 0.0 ||
      field->number() != std::floor(field->number())) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a non-negative integer");
  }
  if (field->number() > static_cast<double>(max_value)) {
    return Status::InvalidArgument(std::string("'") + key + "' out of range");
  }
  return static_cast<uint64_t>(field->number());
}

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// How long an injected "daemon.handle" stall parks the worker. Long
// enough that any sane front-tier deadline or hedge threshold fires
// first, short enough that a drill's requests still drain in test time.
constexpr uint32_t kHandleStallMs = 1000;

size_t ResolveWorkerCount(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

double MergedPercentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  const size_t idx = std::min(
      samples->size() - 1,
      static_cast<size_t>(p * static_cast<double>(samples->size() - 1)));
  return (*samples)[idx];
}

RequestServer::RequestServer(ModelRegistry* registry)
    : RequestServer(registry, Options()) {}

RequestServer::RequestServer(ModelRegistry* registry, Options options)
    : registry_(registry),
      options_(options),
      num_tcp_workers_(ResolveWorkerCount(options.num_workers)) {
  // TCP pool slots plus the inline slot for HandleLine/stdio callers.
  // The slot VECTOR must be complete here — Stats() iterates it lock-free
  // from any thread, so it can never grow later — but only the inline
  // slot pre-sizes its serving scratch: pool slots warm up when (and if)
  // RunTcpLoop actually starts their threads, so stdio/library users
  // don't pay for a pool they never run.
  workers_.reserve(num_tcp_workers_ + 1);
  for (size_t w = 0; w < num_tcp_workers_ + 1; ++w) {
    workers_.push_back(std::make_unique<WorkerState>(
        std::max<size_t>(options_.latency_window, 1)));
  }
  InlineWorker()->workspace.Reserve(options_.serve.m,
                                    options_.serve.block_items);
}

void RequestServer::InstallReloadSignalHandler() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSighup;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: a SIGHUP arriving mid-accept/mid-read surfaces as EINTR
  // so the serving loop can apply the reload promptly.
  ::sigaction(SIGHUP, &sa, nullptr);
}

void RequestServer::InstallShutdownSignalHandler() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnShutdownSignal;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART for the same reason as SIGHUP: the thread that takes
  // the signal must fall out of its blocking call and see the latch.
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

void RequestServer::RequestShutdown() {
  g_pending_shutdown.store(true, std::memory_order_relaxed);
}

bool RequestServer::ShutdownRequested() {
  return g_pending_shutdown.load(std::memory_order_relaxed);
}

bool RequestServer::ConsumeShutdownRequest() {
  return g_pending_shutdown.exchange(false, std::memory_order_relaxed);
}

bool RequestServer::ConsumePendingReload() {
  if (!g_pending_reload.exchange(false, std::memory_order_relaxed)) {
    return false;
  }
  // Failed models keep their previous generation serving; surface the
  // failure (SIGHUP has no reply channel) and do not count it as a
  // performed reload, so stats can't report a stale model as refreshed.
  const Status status = registry_->ReloadAll();
  if (!status.ok()) {
    std::fprintf(stderr, "hot reload failed: %s\n",
                 status.ToString().c_str());
    return true;
  }
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void RequestServer::RefreshLeases(WorkerState* w) {
  const uint64_t generation = registry_->generation();
  if (generation != w->seen_generation) {
    w->leases.clear();
    w->seen_generation = generation;
  }
}

std::shared_ptr<const ServableModel> RequestServer::LeaseModel(
    WorkerState* w, const std::string& name) {
  // Lock-free fast path: the lease survives until the registry publishes
  // a new generation, at which point this worker drops its cache and
  // re-resolves — draining onto the new model without a global pause.
  RefreshLeases(w);
  auto it = w->leases.find(name);
  if (it != w->leases.end()) return it->second;
  std::shared_ptr<const ServableModel> model = registry_->Get(name);
  if (model != nullptr) w->leases.emplace(name, model);
  return model;
}

Result<std::vector<ScoredItem>> RequestServer::RecommendOn(
    WorkerState* w, const std::string& model_name, uint32_t user,
    const ServeOptions& options,
    const std::vector<uint32_t>* exclude_override, int64_t* shard_out) {
  // Resolved exactly once per request: the whole answer comes from one
  // model generation even if a hot swap lands mid-request.
  std::shared_ptr<const ServableModel> model = LeaseModel(w, model_name);
  if (model == nullptr) {
    return Status::NotFound("no model named '" + model_name + "'");
  }
  if (user >= model->num_users()) {
    return Status::OutOfRange("user " + std::to_string(user) +
                              " out of range (model has " +
                              std::to_string(model->num_users()) +
                              " users)");
  }
  if (model->sharded) {
    w->shard_requests.fetch_add(1, std::memory_order_relaxed);
    if (shard_out != nullptr) *shard_out = model->shard_of(user);
  } else if (shard_out != nullptr) {
    *shard_out = -1;
  }
  std::span<const uint32_t> exclude =
      exclude_override != nullptr ? std::span<const uint32_t>(*exclude_override)
                                  : model->ExcludeRow(user);
  // More than the whole catalog is the whole catalog: clamping keeps a
  // hostile {"m":4000000000} from forcing a selection-buffer reservation
  // sized to the request instead of to the model.
  ServeOptions bounded = options;
  bounded.m = std::min(bounded.m, model->num_items());
  auto ranked =
      ServeTopM(*model->recommender, user, exclude, bounded, &w->workspace);
  return std::vector<ScoredItem>(ranked.begin(), ranked.end());
}

Result<std::vector<ScoredItem>> RequestServer::Recommend(
    const std::string& model_name, uint32_t user, const ServeOptions& options,
    const std::vector<uint32_t>* exclude_override) {
  return RecommendOn(InlineWorker(), model_name, user, options,
                     exclude_override);
}

std::string RequestServer::ErrorReply(WorkerState* w,
                                      const std::string& message) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok");
  writer.Bool(false);
  writer.Key("error");
  writer.String(message);
  writer.EndObject();
  w->errors.fetch_add(1, std::memory_order_relaxed);
  return writer.str();
}

std::string RequestServer::CodedErrorReply(WorkerState* w,
                                           const std::string& message,
                                           uint32_t code) {
  // Connection-level failures (413 oversize, 408 idle) carry a "code" so
  // clients can tell "fix your framing / you were reaped" apart from a
  // request error; the same convention 503 shed replies use.
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok");
  writer.Bool(false);
  writer.Key("error");
  writer.String(message);
  writer.Key("code");
  writer.UInt(code);
  writer.EndObject();
  w->errors.fetch_add(1, std::memory_order_relaxed);
  return writer.str();
}

std::string RequestServer::HandleRecommend(WorkerState* w,
                                           const JsonValue& request) {
  std::string model_name = "default";
  if (const JsonValue* m = request.Find("model"); m != nullptr) {
    if (!m->is_string()) return ErrorReply(w, "'model' must be a string");
    model_name = m->string();
  }
  auto m = GetUIntField(request, "m", options_.serve.m, UINT32_MAX);
  if (!m.ok()) return ErrorReply(w, m.status().message());

  ServeOptions serve = options_.serve;
  serve.m = static_cast<uint32_t>(*m);
  if (const JsonValue* ms = request.Find("min_score"); ms != nullptr) {
    if (!ms->is_number()) return ErrorReply(w, "'min_score' must be a number");
    serve.min_score = ms->number();
  }

  // Anonymous/new users recommend by history (fold-in) instead of by
  // stored user id — the two addressing modes are mutually exclusive.
  if (const JsonValue* history = request.Find("history"); history != nullptr) {
    if (request.Find("user") != nullptr) {
      return ErrorReply(w, "'user' and 'history' are mutually exclusive");
    }
    if (request.Find("exclude") != nullptr) {
      return ErrorReply(
          w, "'exclude' is not supported with 'history' (the history itself "
             "is excluded)");
    }
    return HandleHistory(w, *history, model_name, serve);
  }

  auto user = GetUIntField(request, "user", 0, UINT32_MAX);
  if (!user.ok()) return ErrorReply(w, user.status().message());
  if (request.Find("user") == nullptr) {
    return ErrorReply(w, "'user' or 'history' is required");
  }

  const std::vector<uint32_t>* exclude_override = nullptr;
  if (const JsonValue* ex = request.Find("exclude"); ex != nullptr) {
    if (!ex->is_array()) {
      return ErrorReply(w, "'exclude' must be an array of item ids");
    }
    w->exclude_scratch.clear();
    for (const JsonValue& e : ex->array()) {
      if (!e.is_number() || e.number() < 0.0 ||
          e.number() != std::floor(e.number()) || e.number() > UINT32_MAX) {
        return ErrorReply(w, "'exclude' entries must be item ids");
      }
      w->exclude_scratch.push_back(static_cast<uint32_t>(e.number()));
    }
    std::sort(w->exclude_scratch.begin(), w->exclude_scratch.end());
    w->exclude_scratch.erase(
        std::unique(w->exclude_scratch.begin(), w->exclude_scratch.end()),
        w->exclude_scratch.end());
    exclude_override = &w->exclude_scratch;
  }

  int64_t shard = -1;
  auto ranked = RecommendOn(w, model_name, static_cast<uint32_t>(*user), serve,
                            exclude_override, &shard);
  if (!ranked.ok()) return ErrorReply(w, ranked.status().ToString());

  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok");
  writer.Bool(true);
  writer.Key("model");
  writer.String(model_name);
  writer.Key("user");
  writer.UInt(*user);
  if (shard >= 0) {
    // Only sharded bindings carry the field: monolithic replies stay
    // byte-identical to every previous release, which the scale test's
    // oracle comparison and old clients both rely on.
    writer.Key("shard");
    writer.UInt(static_cast<uint64_t>(shard));
  }
  WriteRankedItems(&writer, *ranked);
  writer.EndObject();
  return writer.str();
}

std::string RequestServer::HandleHistory(WorkerState* w,
                                         const JsonValue& history,
                                         const std::string& model_name,
                                         const ServeOptions& serve) {
  if (!history.is_array()) {
    return ErrorReply(w, "'history' must be an array of item ids");
  }
  w->history_scratch.clear();
  for (const JsonValue& e : history.array()) {
    if (!e.is_number() || e.number() < 0.0 ||
        e.number() != std::floor(e.number()) || e.number() > UINT32_MAX) {
      return ErrorReply(w, "'history' entries must be item ids");
    }
    w->history_scratch.push_back(static_cast<uint32_t>(e.number()));
  }
  // One lease for the whole request, same as the stored-user path.
  std::shared_ptr<const ServableModel> model = LeaseModel(w, model_name);
  if (model == nullptr) {
    return ErrorReply(
        w, Status::NotFound("no model named '" + model_name + "'").ToString());
  }
  if (model->fold_in == nullptr) {
    return ErrorReply(w, Status::FailedPrecondition(
                             "model '" + model_name +
                             "' does not support fold-in (not an OCuLaR "
                             "probability model)")
                             .ToString());
  }
  const FoldInContext& ctx = *model->fold_in;
  const HistorySanitizeResult sanitized =
      SanitizeHistory(&w->history_scratch, ctx.num_items());
  if (sanitized.dropped_out_of_range > 0) {
    w->dropped_history_ids.fetch_add(sanitized.dropped_out_of_range,
                                     std::memory_order_relaxed);
  }
  w->fold_in_requests.fetch_add(1, std::memory_order_relaxed);

  auto rec = RecommendForHistoryInto(
      ctx, w->history_scratch, serve.m, serve.min_score, serve.block_items,
      options_.fold_in, &w->fold_in, &w->workspace.tile,
      &w->workspace.selection);
  if (!rec.ok()) return ErrorReply(w, rec.status().ToString());

  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok");
  writer.Bool(true);
  writer.Key("model");
  writer.String(model_name);
  writer.Key("folded");
  writer.Bool(rec->folded);
  writer.Key("dropped");
  writer.UInt(sanitized.dropped_out_of_range);
  WriteRankedItems(&writer, rec->items);
  writer.EndObject();
  return writer.str();
}

Result<RequestServer::UpdateOutcome> RequestServer::ApplyShardedUpdate(
    const ServableModel& model, const std::string& model_name,
    const std::vector<std::pair<uint32_t, uint32_t>>& adds,
    uint32_t num_users, uint32_t num_items) {
  // A sharded binding never grows online: the shard ranges and the shared
  // item factors are fixed at save time, so an id past either dimension
  // needs an offline retrain + reshard (`ocular_cli shard`), not an
  // update.
  if (num_users > model.num_users() || num_items > model.num_items()) {
    return Status::FailedPrecondition(
        "sharded model '" + model_name +
        "' cannot grow online; retrain and reshard offline (ocular_cli "
        "shard)");
  }
  for (auto [u, i] : adds) {
    if (u >= model.num_users() || i >= model.num_items()) {
      return Status::FailedPrecondition(
          "add (" + std::to_string(u) + ", " + std::to_string(i) +
          ") is outside sharded model '" + model_name + "' (" +
          std::to_string(model.num_users()) + " x " +
          std::to_string(model.num_items()) +
          "); retrain and reshard offline (ocular_cli shard)");
    }
  }
  if (model.fold_in == nullptr) {
    return Status::FailedPrecondition(
        "sharded update refreshes users by fold-in, but model '" + model_name +
        "' has no fold-in context (not an OCuLaR probability model)");
  }
  if (fault::Maybe("update.apply")) return fault::InjectedError("update.apply");

  // Merge the deltas into a private copy of the training matrix: a
  // touched user's fold-in history is its FULL updated row (Section V's
  // new-user solve against fixed item factors), and the republish rebinds
  // the merged matrix as the exclusion source.
  CooBuilder coo;
  coo.Reserve(model.train->nnz() + adds.size());
  for (auto [u, i] : model.train->ToPairs()) coo.Add(u, i);
  for (auto [u, i] : adds) coo.Add(u, i);
  OCULAR_ASSIGN_OR_RETURN(
      auto entries, coo.Finalize(model.num_users(), model.num_items()));
  auto merged = std::make_shared<const CsrMatrix>(CsrMatrix::FromCoo(entries));

  std::vector<uint32_t> touched_users;
  touched_users.reserve(adds.size());
  for (auto [u, i] : adds) touched_users.push_back(u);
  std::sort(touched_users.begin(), touched_users.end());
  touched_users.erase(
      std::unique(touched_users.begin(), touched_users.end()),
      touched_users.end());

  const FoldInContext& ctx = *model.fold_in;
  FoldInWorkspace fold_ws;
  ShardSetManifest manifest = model.manifest;
  uint32_t shards_touched = 0;
  size_t next = 0;
  for (uint32_t s = 0;
       s < model.shard_map.num_shards() && next < touched_users.size(); ++s) {
    const uint32_t begin = model.shard_map.begin(s);
    const uint32_t end = model.shard_map.end(s);
    if (touched_users[next] >= end) continue;

    // Copy-on-write per shard: the live mapping is never written. Only
    // shards owning a touched user are copied, folded, and rewritten —
    // the untouched siblings keep their files, fingerprints and mappings.
    ConstMatrixView rows = model.shard_stores[s]->user_factors();
    DenseMatrix block(rows.rows(), rows.cols());
    for (uint32_t r = 0; r < rows.rows(); ++r) {
      std::span<const double> src = rows.Row(r);
      std::copy(src.begin(), src.end(), block.Row(r).begin());
    }
    for (; next < touched_users.size() && touched_users[next] < end; ++next) {
      const uint32_t u = touched_users[next];
      const std::span<const uint32_t> history = merged->Row(u);
      fold_ws.Reserve(ctx.dims(), history.size());
      OCULAR_RETURN_IF_ERROR(
          FoldInUserInto(ctx, history, options_.fold_in, &fold_ws));
      std::copy(fold_ws.f.begin(), fold_ws.f.end(),
                block.Row(u - begin).begin());
    }

    // Same publish discipline as the monolithic retrain — write-temp,
    // fsync, verify-open, durable-rename — applied to ONE shard file.
    const std::string shard_path =
        ShardSetResolve(model.model_path, manifest.shards[s].file);
    const std::string tmp_path = shard_path + ".update.tmp";
    OCULAR_RETURN_IF_ERROR(
        SaveShardUserFactors(model.meta(), block, tmp_path));
    Status durable = fs::FsyncFile(tmp_path);
    if (durable.ok()) {
      if (auto verify = ModelStore::Open(tmp_path); !verify.ok()) {
        durable = Status::IOError("shard update artifact failed verification: " +
                                  verify.status().ToString());
      }
    }
    if (durable.ok()) durable = fs::DurableRename(tmp_path, shard_path);
    if (!durable.ok()) {
      if (::access(tmp_path.c_str(), F_OK) == 0) ::remove(tmp_path.c_str());
      // Shards already renamed this call now disagree with the published
      // manifest on disk; the serving generation is untouched, and the
      // next open refuses with a fingerprint mismatch instead of serving
      // the torn set (OPERATIONS.md covers the recovery).
      return durable;
    }
    OCULAR_ASSIGN_OR_RETURN(manifest.shards[s].fingerprint,
                            fs::FileFingerprint(shard_path));
    ++shards_touched;
  }

  // Manifest last, durably: readers open either the old consistent set or
  // the new one, never a mix.
  if (shards_touched > 0) {
    const std::string manifest_tmp = model.model_path + ".update.tmp";
    OCULAR_RETURN_IF_ERROR(SaveShardSetManifest(manifest, manifest_tmp));
    Status durable = fs::FsyncFile(manifest_tmp);
    if (durable.ok()) {
      durable = fs::DurableRename(manifest_tmp, model.model_path);
    }
    if (!durable.ok()) {
      if (::access(manifest_tmp.c_str(), F_OK) == 0) {
        ::remove(manifest_tmp.c_str());
      }
      return durable;
    }
  }

  // The per-shard generation swap: Load aliases every untouched member
  // from the serving generation and reopens only the rewritten files.
  OCULAR_RETURN_IF_ERROR(registry_->Load(model_name, model.model_path, merged));
  updates_.fetch_add(1, std::memory_order_relaxed);

  UpdateOutcome outcome;
  outcome.num_users = model.num_users();
  outcome.num_items = model.num_items();
  outcome.sweeps_run = 0;
  outcome.converged = true;
  outcome.sharded = true;
  outcome.shards_touched = shards_touched;
  outcome.users_refreshed = static_cast<uint32_t>(touched_users.size());
  return outcome;
}

Result<RequestServer::UpdateOutcome> RequestServer::RetrainAndPublish(
    const ServableModel& model, const std::string& model_name,
    const std::shared_ptr<const CsrMatrix>& updated_train, uint32_t users,
    uint32_t items, uint32_t sweeps, uint64_t seed, bool* published) {
  *published = false;
  // Copy-on-write: the live mapping is never touched — the update
  // materializes a private copy, retrains it, and publishes the result as
  // a new generation.
  if (fault::Maybe("update.apply")) return fault::InjectedError("update.apply");
  OCULAR_ASSIGN_OR_RETURN(LoadedModel loaded, model.store.MaterializeOcular());

  OcularConfig config = loaded.config;
  config.max_sweeps = sweeps;
  ExpandOptions expand;
  expand.seed = seed;  // 0 = shape-derived stream (see ExpandOptions)
  OCULAR_ASSIGN_OR_RETURN(
      OcularFitResult fit,
      UpdateModel(loaded.model, *updated_train, config, expand));

  // Persist write-temp, fsync, verify, durable-rename: a crash mid-write
  // can never leave a torn model file behind the running mapping, a crash
  // right after the ack can never lose the renamed artifact to unflushed
  // page cache, and a silently corrupted write can never be published
  // (the verify-open checks every section checksum before the swap).
  const std::string tmp_path = model.model_path + ".update.tmp";
  OCULAR_RETURN_IF_ERROR(SaveModelBinary(fit.model, config, tmp_path));
  Status durable = fs::FsyncFile(tmp_path);
  if (durable.ok()) {
    if (auto verify = ModelStore::Open(tmp_path); !verify.ok()) {
      durable = Status::IOError("update artifact failed verification: " +
                                verify.status().ToString());
    }
  }
  if (durable.ok()) durable = fs::DurableRename(tmp_path, model.model_path);
  if (!durable.ok()) {
    // DurableRename can fail on either side of the rename (the dirsync
    // comes after it). The tmp file still existing proves the rename
    // never happened — clean up and report an unpublished failure; tmp
    // gone means the artifact DID move, and only its directory-entry
    // durability is in doubt — treat as published (fs_util.h contract)
    // so the journal commits what clients will observe.
    if (::access(tmp_path.c_str(), F_OK) == 0) {
      ::remove(tmp_path.c_str());
      return durable;
    }
    std::fprintf(stderr,
                 "update on '%s': published but directory sync failed: %s\n",
                 model_name.c_str(), durable.ToString().c_str());
  }
  *published = true;
  // The same generation swap as SIGHUP reload: in-flight requests drain
  // on their leased mapping, workers re-resolve lock-free.
  OCULAR_RETURN_IF_ERROR(
      registry_->Load(model_name, model.model_path, updated_train));
  updates_.fetch_add(1, std::memory_order_relaxed);

  UpdateOutcome outcome;
  outcome.num_users = users;
  outcome.num_items = items;
  outcome.sweeps_run = fit.sweeps_run;
  outcome.converged = fit.converged;
  return outcome;
}

Result<RequestServer::UpdateOutcome> RequestServer::ApplyUpdate(
    WorkerState* w, const std::string& model_name,
    const std::vector<std::pair<uint32_t, uint32_t>>& adds,
    uint32_t num_users, uint32_t num_items, uint32_t sweeps, uint64_t seed) {
  // One update at a time; concurrent recommends keep serving the current
  // generation and never take this mutex.
  std::lock_guard<std::mutex> lock(update_mu_);
  std::shared_ptr<const ServableModel> model = LeaseModel(w, model_name);
  if (model == nullptr) {
    return Status::NotFound("no model named '" + model_name + "'");
  }
  if (model->train == nullptr) {
    return Status::FailedPrecondition(
        "update requires a dataset bound to model '" + model_name +
        "' (--datasets): the interaction deltas extend the training matrix");
  }
  if (model->sharded) {
    // Sharded bindings refresh touched users by fold-in against the fixed
    // shared item factors and republish only the rewritten shard files.
    // The update journal stays out of this path — it is a single-artifact
    // recovery mechanism keyed on one file fingerprint; sharded updates
    // are instead made durable per shard file (write-temp + fsync +
    // verify + rename), with the manifest republished last.
    return ApplyShardedUpdate(*model, model_name, adds, num_users, num_items);
  }
  uint32_t users = std::max(model->num_users(), num_users);
  uint32_t items = std::max(model->num_items(), num_items);
  CooBuilder coo;
  coo.Reserve(model->train->nnz() + adds.size());
  for (auto [u, i] : model->train->ToPairs()) coo.Add(u, i);
  for (auto [u, i] : adds) {
    users = std::max(users, u + 1);
    items = std::max(items, i + 1);
    coo.Add(u, i);
  }
  OCULAR_ASSIGN_OR_RETURN(auto entries, coo.Finalize(users, items));
  auto updated_train =
      std::make_shared<const CsrMatrix>(CsrMatrix::FromCoo(entries));

  // Write-ahead: the full replay recipe is durable before the retrain
  // starts, so a crash anywhere past this point can be recovered to the
  // exact artifact this call would have published (RecoverJournal). An
  // append failure fails the update — the client's ack must never be
  // backed by nothing but RAM.
  UpdateJournal journal;
  const bool journaling = options_.update_journal;
  if (journaling) {
    UpdateRecord record;
    OCULAR_ASSIGN_OR_RETURN(record.base_fingerprint,
                            fs::FileFingerprint(model->model_path));
    record.seed = seed;
    record.num_users = users;
    record.num_items = items;
    record.sweeps = sweeps;
    record.adds = adds;
    OCULAR_RETURN_IF_ERROR(
        journal.Open(UpdateJournal::PathFor(model->model_path)));
    OCULAR_RETURN_IF_ERROR(journal.AppendUpdate(record));
  }

  bool published = false;
  Result<UpdateOutcome> outcome =
      RetrainAndPublish(*model, model_name, updated_train, users, items,
                        sweeps, seed, &published);
  if (journaling) {
    // The journal's verdict follows the artifact, not the reply: a
    // failure AFTER the rename still commits (clients will observe the
    // new artifact), a clean failure before it aborts so recovery never
    // replays an update the client saw fail. A failed closing append
    // merely leaves the record pending — the fingerprint check at next
    // start resolves it the right way, so serving continues.
    const Status closing = (outcome.ok() || published) ? journal.AppendCommit()
                                                       : journal.AppendAbort();
    if (!closing.ok()) {
      std::fprintf(stderr, "update journal on '%s': %s\n", model_name.c_str(),
                   closing.ToString().c_str());
    }
  }
  return outcome;
}

Result<JournalRecoveryStats> RequestServer::RecoverJournal(
    const std::string& model_name) {
  std::lock_guard<std::mutex> lock(update_mu_);
  JournalRecoveryStats stats;
  std::shared_ptr<const ServableModel> model = registry_->Get(model_name);
  if (model == nullptr) {
    return Status::NotFound("no model named '" + model_name + "'");
  }
  const std::string journal_path = UpdateJournal::PathFor(model->model_path);
  OCULAR_ASSIGN_OR_RETURN(UpdateJournal::Plan plan,
                          UpdateJournal::LoadPlan(journal_path));
  stats.torn_tail = plan.torn_tail;
  if (plan.applied.empty() && !plan.has_pending) return stats;
  if (model->train == nullptr) {
    return Status::FailedPrecondition(
        "journal " + journal_path + " has records but model '" + model_name +
        "' has no bound dataset (--datasets): the deltas extend the training "
        "matrix");
  }

  // A trailing record with no commit/abort is the crash window. The
  // artifact fingerprint decides which side of the rename the crash hit:
  // still equal to the record's base means the retrain never published —
  // replay it; moved past it means the rename landed and only the commit
  // record is missing — the adds are law, heal the journal.
  bool replay_pending = false;
  if (plan.has_pending) {
    OCULAR_ASSIGN_OR_RETURN(const uint64_t fingerprint,
                            fs::FileFingerprint(model->model_path));
    if (fingerprint == plan.pending.base_fingerprint) {
      replay_pending = true;
    } else {
      plan.applied.push_back(plan.pending);
      plan.has_pending = false;
      stats.healed_commit = true;
    }
  }

  // Re-merge every applied record's deltas into the training base: the
  // --datasets CSV is the original snapshot and knows nothing about
  // updates applied by previous incarnations. CooBuilder::Finalize sorts
  // and deduplicates, so the merge is order-insensitive and idempotent —
  // recovering twice yields the same canonical matrix.
  uint32_t users = model->train->num_rows();
  uint32_t items = model->train->num_cols();
  size_t extra = 0;
  for (const UpdateRecord& record : plan.applied) extra += record.adds.size();
  CooBuilder coo;
  coo.Reserve(model->train->nnz() + extra);
  for (auto [u, i] : model->train->ToPairs()) coo.Add(u, i);
  for (const UpdateRecord& record : plan.applied) {
    users = std::max(users, record.num_users);
    items = std::max(items, record.num_items);
    for (auto [u, i] : record.adds) coo.Add(u, i);
  }
  OCULAR_ASSIGN_OR_RETURN(auto entries, coo.Finalize(users, items));
  auto merged = std::make_shared<const CsrMatrix>(CsrMatrix::FromCoo(entries));
  stats.applied_merged = plan.applied.size();

  if (!replay_pending) {
    if (!plan.applied.empty()) {
      OCULAR_RETURN_IF_ERROR(
          registry_->Load(model_name, model->model_path, merged));
      journal_recovered_.fetch_add(plan.applied.size(),
                                   std::memory_order_relaxed);
    }
    if (stats.healed_commit) {
      UpdateJournal journal;
      OCULAR_RETURN_IF_ERROR(journal.Open(journal_path));
      OCULAR_RETURN_IF_ERROR(journal.AppendCommit());
    }
    return stats;
  }

  // Replay: rebuild the pending update's training matrix on top of the
  // recovered base and run the exact pipeline the crashed process was
  // running — same adds, same dims, same sweeps, same seed, same base
  // artifact — so the recovered generation is bit-identical to what the
  // lost ack promised.
  uint32_t replay_users = std::max(users, plan.pending.num_users);
  uint32_t replay_items = std::max(items, plan.pending.num_items);
  CooBuilder replay_coo;
  replay_coo.Reserve(merged->nnz() + plan.pending.adds.size());
  for (auto [u, i] : merged->ToPairs()) replay_coo.Add(u, i);
  for (auto [u, i] : plan.pending.adds) replay_coo.Add(u, i);
  OCULAR_ASSIGN_OR_RETURN(auto replay_entries,
                          replay_coo.Finalize(replay_users, replay_items));
  auto replay_train =
      std::make_shared<const CsrMatrix>(CsrMatrix::FromCoo(replay_entries));
  bool published = false;
  Result<UpdateOutcome> outcome = RetrainAndPublish(
      *model, model_name, replay_train, replay_users, replay_items,
      plan.pending.sweeps, plan.pending.seed, &published);
  if (!outcome.ok() && !published) {
    // Leave the record pending: the next start retries the replay. The
    // caller decides whether to serve without the promised update.
    return outcome.status();
  }
  UpdateJournal journal;
  OCULAR_RETURN_IF_ERROR(journal.Open(journal_path));
  OCULAR_RETURN_IF_ERROR(journal.AppendCommit());
  stats.replayed_pending = true;
  journal_recovered_.fetch_add(plan.applied.size(), std::memory_order_relaxed);
  journal_replays_.fetch_add(1, std::memory_order_relaxed);
  return stats;
}

std::string RequestServer::HandleUpdate(WorkerState* w,
                                        const JsonValue& request) {
  std::string model_name = "default";
  if (const JsonValue* m = request.Find("model"); m != nullptr) {
    if (!m->is_string()) return ErrorReply(w, "'model' must be a string");
    model_name = m->string();
  }
  const JsonValue* adds_field = request.Find("adds");
  if (adds_field == nullptr || !adds_field->is_array()) {
    return ErrorReply(w, "'adds' must be an array of [user, item] pairs");
  }
  std::vector<std::pair<uint32_t, uint32_t>> adds;
  adds.reserve(adds_field->array().size());
  for (const JsonValue& pair : adds_field->array()) {
    if (!pair.is_array() || pair.array().size() != 2) {
      return ErrorReply(w, "'adds' must be an array of [user, item] pairs");
    }
    uint32_t ids[2];
    for (int n = 0; n < 2; ++n) {
      const JsonValue& v = pair.array()[n];
      if (!v.is_number() || v.number() < 0.0 ||
          v.number() != std::floor(v.number()) || v.number() > UINT32_MAX) {
        return ErrorReply(w, "'adds' entries must be non-negative ids");
      }
      ids[n] = static_cast<uint32_t>(v.number());
    }
    adds.emplace_back(ids[0], ids[1]);
  }
  auto num_users = GetUIntField(request, "num_users", 0, UINT32_MAX);
  if (!num_users.ok()) return ErrorReply(w, num_users.status().message());
  auto num_items = GetUIntField(request, "num_items", 0, UINT32_MAX);
  if (!num_items.ok()) return ErrorReply(w, num_items.status().message());
  auto sweeps =
      GetUIntField(request, "sweeps", options_.update_sweeps, 100000);
  if (!sweeps.ok()) return ErrorReply(w, sweeps.status().message());
  if (*sweeps == 0) return ErrorReply(w, "'sweeps' must be at least 1");
  // JSON numbers are doubles: cap explicit seeds at 2^53 so every
  // accepted value round-trips exactly.
  auto seed = GetUIntField(request, "seed", 0, uint64_t{1} << 53);
  if (!seed.ok()) return ErrorReply(w, seed.status().message());

  const double start_us = NowMicros();
  auto outcome = ApplyUpdate(w, model_name, adds,
                             static_cast<uint32_t>(*num_users),
                             static_cast<uint32_t>(*num_items),
                             static_cast<uint32_t>(*sweeps), *seed);
  if (!outcome.ok()) return ErrorReply(w, outcome.status().ToString());

  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok");
  writer.Bool(true);
  writer.Key("model");
  writer.String(model_name);
  writer.Key("users");
  writer.UInt(outcome->num_users);
  writer.Key("items");
  writer.UInt(outcome->num_items);
  writer.Key("sweeps_run");
  writer.UInt(outcome->sweeps_run);
  writer.Key("converged");
  writer.Bool(outcome->converged);
  if (outcome->sharded) {
    writer.Key("shards_touched");
    writer.UInt(outcome->shards_touched);
    writer.Key("users_refreshed");
    writer.UInt(outcome->users_refreshed);
  }
  writer.Key("publish_us");
  writer.Double(NowMicros() - start_us);
  writer.EndObject();
  return writer.str();
}

std::string RequestServer::HandleModels() {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("models");
  w.BeginArray();
  for (const std::string& name : registry_->Names()) {
    std::shared_ptr<const ServableModel> model = registry_->Get(name);
    if (model == nullptr) continue;  // raced with an unload
    w.BeginObject();
    w.Key("name");
    w.String(name);
    w.Key("algorithm");
    w.String(model->meta().algorithm);
    w.Key("users");
    w.UInt(model->num_users());
    w.Key("items");
    w.UInt(model->num_items());
    w.Key("k");
    w.UInt(model->k());
    w.Key("mapped_bytes");
    w.UInt(model->mapped_bytes());
    w.Key("sharded");
    w.Bool(model->sharded);
    w.Key("shards");
    w.UInt(model->num_shards());
    w.Key("path");
    w.String(model->model_path);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string RequestServer::HandlePing() {
  // The health-probe verb: a fleet front tier pings replicas on an
  // interval, so the reply must stay cheap and unblockable — no model
  // lease is resolved (a probe cannot stall behind a reload or an
  // update publish) and no per-worker scratch is touched. uptime_ms
  // lets a prober tell a long-lived replica from one that silently
  // restarted; generation says which model swap it is serving.
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("uptime_ms");
  w.UInt(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count()));
  w.Key("generation");
  w.UInt(registry_->generation());
  w.EndObject();
  return w.str();
}

std::string RequestServer::HandleStats() {
  const DaemonStatsSnapshot snapshot = Stats();
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("models_loaded");
  w.UInt(snapshot.models_loaded);
  w.Key("workers");
  w.UInt(snapshot.workers);
  w.Key("requests_served");
  w.UInt(snapshot.requests_served);
  w.Key("errors");
  w.UInt(snapshot.errors);
  w.Key("reloads");
  w.UInt(snapshot.reloads);
  w.Key("connections_shed");
  w.UInt(snapshot.connections_shed);
  w.Key("connections_timed_out");
  w.UInt(snapshot.connections_timed_out);
  w.Key("fold_in_requests");
  w.UInt(snapshot.fold_in_requests);
  w.Key("history_dropped_ids");
  w.UInt(snapshot.history_dropped_ids);
  w.Key("shard_requests");
  w.UInt(snapshot.shard_requests);
  w.Key("updates");
  w.UInt(snapshot.updates);
  w.Key("journal_recovered");
  w.UInt(snapshot.journal_recovered);
  w.Key("journal_replays");
  w.UInt(snapshot.journal_replays);
  w.Key("p50_latency_us");
  w.Double(snapshot.p50_latency_us);
  w.Key("p99_latency_us");
  w.Double(snapshot.p99_latency_us);
  w.EndObject();
  return w.str();
}

std::string RequestServer::HandleReload(WorkerState* w) {
  Status status = registry_->ReloadAll();
  if (!status.ok()) return ErrorReply(w, status.ToString());
  reloads_.fetch_add(1, std::memory_order_relaxed);
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok");
  writer.Bool(true);
  writer.Key("reloaded");
  writer.UInt(registry_->size());
  writer.EndObject();
  return writer.str();
}

std::string RequestServer::HandleLine(const std::string& line) {
  bool quit = false;
  std::string reply = HandleLineOn(InlineWorker(), line, &quit);
  if (quit) quit_requested_ = true;
  return reply;
}

std::string RequestServer::HandleLineOn(WorkerState* w,
                                        const std::string& line, bool* quit) {
  const double start_us = NowMicros();
  // Injected handling stall ("daemon.handle"): the worker sleeps a fixed
  // second before answering — a hung-but-alive replica (allocator stall,
  // page-cache miss storm, runaway request ahead in the pipeline), which
  // is exactly what the fleet front tier's deadlines and hedged requests
  // are tested against. The kill@C grammar turns the same point into a
  // mid-request SIGKILL window: the process dies while a request is in
  // flight and the reply never leaves.
  if (fault::Maybe("daemon.handle")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kHandleStallMs));
  }
  std::string reply;
  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    reply = ErrorReply(w, parsed.status().ToString());
  } else if (!parsed->is_object()) {
    reply = ErrorReply(w, "request must be a JSON object");
  } else {
    std::string cmd = "recommend";
    bool bad_cmd = false;
    if (const JsonValue* c = parsed->Find("cmd"); c != nullptr) {
      if (c->is_string()) {
        cmd = c->string();
      } else {
        bad_cmd = true;
      }
    }
    if (bad_cmd) {
      reply = ErrorReply(w, "'cmd' must be a string");
    } else if (cmd == "recommend") {
      reply = HandleRecommend(w, *parsed);
    } else if (cmd == "update") {
      reply = HandleUpdate(w, *parsed);
    } else if (cmd == "models") {
      reply = HandleModels();
    } else if (cmd == "ping") {
      reply = HandlePing();
    } else if (cmd == "stats") {
      reply = HandleStats();
    } else if (cmd == "reload") {
      reply = HandleReload(w);
    } else if (cmd == "quit") {
      *quit = true;
      JsonWriter writer;
      writer.BeginObject();
      writer.Key("ok");
      writer.Bool(true);
      writer.Key("bye");
      writer.Bool(true);
      writer.EndObject();
      reply = writer.str();
    } else {
      reply = ErrorReply(w, "unknown cmd '" + cmd + "'");
    }
  }
  w->requests.fetch_add(1, std::memory_order_relaxed);
  w->latency.Record(NowMicros() - start_us);
  return reply;
}

DaemonStatsSnapshot RequestServer::Stats() const {
  DaemonStatsSnapshot snapshot;
  snapshot.models_loaded = registry_->size();
  snapshot.workers = num_tcp_workers_;
  snapshot.reloads = reloads_.load(std::memory_order_relaxed);
  snapshot.connections_shed = shed_.load(std::memory_order_relaxed);
  snapshot.connections_timed_out = timed_out_.load(std::memory_order_relaxed);
  snapshot.updates = updates_.load(std::memory_order_relaxed);
  snapshot.journal_recovered =
      journal_recovered_.load(std::memory_order_relaxed);
  snapshot.journal_replays = journal_replays_.load(std::memory_order_relaxed);
  std::vector<double> window;
  for (const auto& w : workers_) {
    snapshot.requests_served += w->requests.load(std::memory_order_relaxed);
    snapshot.errors += w->errors.load(std::memory_order_relaxed);
    snapshot.fold_in_requests +=
        w->fold_in_requests.load(std::memory_order_relaxed);
    snapshot.history_dropped_ids +=
        w->dropped_history_ids.load(std::memory_order_relaxed);
    snapshot.shard_requests += w->shard_requests.load(std::memory_order_relaxed);
    w->latency.AppendWindowTo(&window);
  }
  snapshot.p50_latency_us = MergedPercentile(&window, 0.50);
  snapshot.p99_latency_us = MergedPercentile(&window, 0.99);
  return snapshot;
}

void RequestServer::RunStdioLoop(std::istream& in, std::ostream& out) {
  std::string line;
  std::string partial;  // prefix extracted before an interrupted read
  while (!quit_requested_) {
    ConsumePendingReload();
    if (g_pending_shutdown.exchange(false, std::memory_order_relaxed)) {
      // SIGTERM drain, stdio flavor: every request read so far has been
      // answered and flushed (one write per line), so just stop reading.
      std::fprintf(stderr, "drained: %s\n", HandleStats().c_str());
      break;
    }
    errno = 0;
    if (!std::getline(in, line)) {
      // A SIGHUP arriving while blocked in getline fails the stream with
      // EINTR (the handler is installed without SA_RESTART); that is a
      // reload request, not end of input — recover and keep serving. The
      // stream flags are not trustworthy here (libstdc++ reports the
      // interrupted read as eof), so the errno check decides, and the
      // C-stdio error state backing std::cin must be cleared too. Any
      // half-read line is carried over so the request stream stays
      // aligned.
      if (errno == EINTR) {
        partial += line;
        in.clear();
        if (&in == &std::cin) std::clearerr(stdin);
        continue;
      }
      break;
    }
    if (!partial.empty()) {
      line = partial + line;
      partial.clear();
    }
    if (line.empty()) continue;
    out << HandleLine(line) << '\n';
    out.flush();
  }
}

void RequestServer::ServeConnection(int fd, WorkerState* w) {
  // Replies go out as one batched write per pipelined burst, so Nagle
  // has little to coalesce — disable it so the final partial segment of
  // a batch is never held hostage to the peer's delayed ACK.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Socket deadlines: a worker must never be parked forever against a
  // peer that stopped sending (read side) or stopped draining its replies
  // (write side). The receive deadline doubles as this connection's
  // wakeup tick — each expiry returns EAGAIN so the loop can check the
  // idle clock (and, during shutdown, the drain latch) before parking
  // again.
  if (options_.io_timeout_ms > 0) {
    struct timeval tv;
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(options_.io_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  // Injected send failure ("daemon.send"): the whole batched write is
  // dropped and the connection closed — an abrupt peer-visible failure,
  // but never a torn reply (the fault fires before any byte goes out,
  // exactly like a peer reset between batches).
  const auto send_checked = [fd](const char* data, size_t size) {
    if (fault::Maybe("daemon.send")) return false;
    return net::SendAll(fd, data, size);
  };
  // The idle clock counts COMPLETED requests, not received bytes: a
  // slow-loris peer dribbling a byte at a time makes progress by the
  // byte-clock but never by this one.
  auto last_request = std::chrono::steady_clock::now();
  std::string buffer;
  char chunk[16384];
  bool connection_quit = false;
  while (!connection_quit) {
    ConsumePendingReload();
    // Drain: every COMPLETE request received before the latch was seen
    // has been answered and flushed by the burst loop below; stop reading
    // new ones and release the worker. A worker parked in read() notices
    // via its receive-deadline tick.
    if (ShutdownRequested()) break;
    // Drop stale model leases BEFORE parking in read(): a worker idling
    // on a quiet connection must not pin a reloaded-away generation's
    // mapping while it waits. (A reload landing while already blocked is
    // picked up here on the next wake, or by LeaseModel on the next
    // request — the residual pin lasts only until this worker's next
    // read returns.)
    RefreshLeases(w);
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;  // signal (e.g. SIGHUP) — poll and retry
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Receive-deadline tick. Reap the connection once it has gone
        // idle_timeout_ms without a complete request; otherwise park
        // again.
        if (options_.idle_timeout_ms > 0 &&
            std::chrono::steady_clock::now() - last_request >=
                std::chrono::milliseconds(options_.idle_timeout_ms)) {
          timed_out_.fetch_add(1, std::memory_order_relaxed);
          const std::string reply =
              CodedErrorReply(w,
                              "idle timeout: no complete request in " +
                                  std::to_string(options_.idle_timeout_ms) +
                                  "ms",
                              408) +
              "\n";
          (void)send_checked(reply.data(), reply.size());
          break;
        }
        continue;
      }
      break;
    }
    if (n == 0) break;  // client EOF
    // Everything before old_size was already scanned newline-free, so
    // each chunk is searched exactly once — framing stays linear in the
    // request size.
    const size_t old_size = buffer.size();
    buffer.append(chunk, static_cast<size_t>(n));
    // Request pipelining: a client may send many requests back-to-back
    // without waiting for answers. Every complete line in the buffer is
    // answered now and the replies go out batched — k pipelined requests
    // cost one read plus a handful of writes, not k syscall rounds. The
    // batch is flushed whenever it crosses kReplyFlushBytes so a burst
    // of tiny requests with huge answers (a full-catalog `m`) cannot
    // amplify into an unbounded per-worker buffer the way accumulating
    // a whole burst would; the old write-per-reply path bounded peak
    // memory to one reply, this bounds it to one flush window.
    constexpr size_t kReplyFlushBytes = 256 << 10;
    w->reply_batch.clear();
    bool write_failed = false;
    size_t start = 0;
    size_t newline = buffer.find('\n', old_size);
    for (; newline != std::string::npos && !connection_quit && !write_failed;
         newline = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      bool quit = false;
      w->reply_batch += HandleLineOn(w, line, &quit);
      w->reply_batch.push_back('\n');
      last_request = std::chrono::steady_clock::now();
      if (w->reply_batch.size() >= kReplyFlushBytes) {
        write_failed =
            !send_checked(w->reply_batch.data(), w->reply_batch.size());
        w->reply_batch.clear();
      }
      // `quit` ends the connection (after its reply is flushed); the
      // server and its other connections keep going.
      if (quit) connection_quit = true;
    }
    buffer.erase(0, start);  // keep the newline-free tail
    if (write_failed ||
        (!w->reply_batch.empty() &&
         !send_checked(w->reply_batch.data(), w->reply_batch.size()))) {
      break;
    }
    if (buffer.size() >= options_.max_request_bytes) {
      const std::string reply =
          CodedErrorReply(w,
                          "request line exceeds " +
                              std::to_string(options_.max_request_bytes) +
                              " bytes",
                          413) +
          "\n";
      (void)send_checked(reply.data(), reply.size());
      break;
    }
  }
  ::close(fd);
  // A worker parked on the accept queue must not pin any generation.
  w->leases.clear();
}

void RequestServer::ShedConnection(int fd) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  // 503-style overload reply: well-formed JSON so clients can tell
  // "server full, retry later" apart from a request error, written
  // best-effort (the peer may already be gone) before the close. The
  // retry_after_ms hint is the base delay of the client backoff contract
  // (serving/loadgen.cc honors it with capped exponential backoff).
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(false);
  w.Key("error");
  w.String("server overloaded: accept queue full, retry later");
  w.Key("code");
  w.UInt(503);
  w.Key("retry_after_ms");
  w.UInt(options_.retry_after_ms);
  w.EndObject();
  const std::string reply = w.str() + "\n";
  if (!fault::Maybe("daemon.send")) {
    (void)net::SendAll(fd, reply.data(), reply.size());
  }
  ::close(fd);
}

Status RequestServer::RunTcpLoop(uint16_t port, uint64_t max_connections) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // serve localhost only
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status st =
        Status::IOError(std::string("bind 127.0.0.1:") + std::to_string(port) +
                        ": " + std::strerror(errno));
    ::close(listener);
    return st;
  }
  if (::listen(listener, SOMAXCONN) != 0) {
    const Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listener);
    return st;
  }
  if (options_.io_timeout_ms > 0) {
    // The listener needs the same wakeup tick as the workers: a SIGTERM
    // delivered to some other thread never EINTRs this accept(), so the
    // deadline is what bounds how long a drain request can sit unseen.
    struct timeval tv;
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(options_.io_timeout_ms % 1000) * 1000;
    ::setsockopt(listener, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  {
    // Publish the (possibly kernel-assigned) port only after listen()
    // succeeded: a client that observes it can connect right away.
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    uint16_t actual = port;
    if (::getsockname(listener, reinterpret_cast<struct sockaddr*>(&bound),
                      &len) == 0) {
      actual = ntohs(bound.sin_port);
    }
    bound_port_.store(actual, std::memory_order_release);
  }

  // The fixed shared-nothing pool: each worker blocks on the bounded
  // accept queue and serves whole connections out of its own slot.
  BoundedQueue<int> pending(options_.accept_queue);
  std::vector<std::thread> pool;
  pool.reserve(num_tcp_workers_);
  for (size_t i = 0; i < num_tcp_workers_; ++i) {
    WorkerState* w = workers_[i].get();
    pool.emplace_back([this, &pending, w] {
      w->workspace.Reserve(options_.serve.m, options_.serve.block_items);
      int fd = -1;
      while (pending.Pop(&fd)) ServeConnection(fd, w);
    });
  }

  Status status = Status::OK();
  uint64_t accepted = 0;
  while (max_connections == 0 || accepted < max_connections) {
    ConsumePendingReload();
    if (ShutdownRequested()) break;  // graceful drain: stop accepting
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      // EINTR: a signal (SIGHUP reload or SIGTERM drain) hit this thread.
      // EAGAIN: the listener's receive deadline ticked with no client.
      // Both just re-run the latch checks at the top.
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      status =
          Status::IOError(std::string("accept: ") + std::strerror(errno));
      break;
    }
    ++accepted;
    // Injected accept failure ("daemon.accept"): the connection is
    // dropped on the floor as if the kernel had refused it — the client
    // sees a reset, never a half-served session. It still counts against
    // max_connections so fault runs stay bounded.
    if (fault::Maybe("daemon.accept")) {
      ::close(conn);
      continue;
    }
    // Backpressure: a full queue means every worker is busy AND the
    // waiting room is full — shed instead of queueing without bound.
    if (!pending.TryPush(conn)) ShedConnection(conn);
  }
  pending.Close();  // workers drain what's queued, then exit
  for (std::thread& t : pool) t.join();
  bound_port_.store(0, std::memory_order_release);
  ::close(listener);
  // Drain exit: consume the latch (so a test can serve again in this
  // process) and flush one final stats line — the last thing an operator
  // sees from a SIGTERMed daemon is what it did with its life.
  if (g_pending_shutdown.exchange(false, std::memory_order_relaxed)) {
    std::fprintf(stderr, "drained: %s\n", HandleStats().c_str());
  }
  return status;
}

}  // namespace ocular
