#include "serving/daemon.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include <cstdio>

#include "common/fault.h"
#include "common/fs_util.h"
#include "core/model_store.h"
#include "parallel/bounded_queue.h"
#include "serving/journal.h"
#include "serving/net_util.h"
#include "serving/render.h"

namespace ocular {

namespace {

// SIGHUP latch. A signal handler may only touch async-signal-safe state;
// the actual reload runs on a serving thread between requests.
std::atomic<bool> g_pending_reload{false};

void OnSighup(int /*signum*/) {
  g_pending_reload.store(true, std::memory_order_relaxed);
}

// SIGTERM/SIGINT drain latch. The signal may land on any thread; every
// serving loop polls the latch at its top, and parked reads/accepts wake
// either by EINTR (the handler thread) or by their receive deadline
// (everyone else — see Options::io_timeout_ms), so the whole process
// notices within one deadline tick.
std::atomic<bool> g_pending_shutdown{false};

void OnShutdownSignal(int /*signum*/) {
  g_pending_shutdown.store(true, std::memory_order_relaxed);
}

// Reads a non-negative integer field, with bounds checking against
// `max_value`. Returns defaults when the field is absent.
Result<uint64_t> GetUIntField(const JsonValue& request, const char* key,
                              uint64_t def, uint64_t max_value) {
  const JsonValue* field = request.Find(key);
  if (field == nullptr) return def;
  if (!field->is_number() || field->number() < 0.0 ||
      field->number() != std::floor(field->number())) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a non-negative integer");
  }
  if (field->number() > static_cast<double>(max_value)) {
    return Status::InvalidArgument(std::string("'") + key + "' out of range");
  }
  return static_cast<uint64_t>(field->number());
}

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// How long an injected "daemon.handle" stall parks the worker. Long
// enough that any sane front-tier deadline or hedge threshold fires
// first, short enough that a drill's requests still drain in test time.
constexpr uint32_t kHandleStallMs = 1000;

size_t ResolveWorkerCount(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

double MergedPercentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  const size_t idx = std::min(
      samples->size() - 1,
      static_cast<size_t>(p * static_cast<double>(samples->size() - 1)));
  return (*samples)[idx];
}

RequestServer::RequestServer(ModelRegistry* registry)
    : RequestServer(registry, Options()) {}

RequestServer::RequestServer(ModelRegistry* registry, Options options)
    : registry_(registry),
      options_(options),
      num_tcp_workers_(ResolveWorkerCount(options.num_workers)) {
  // TCP pool slots plus the inline slot for HandleLine/stdio callers.
  // The slot VECTOR must be complete here — Stats() iterates it lock-free
  // from any thread, so it can never grow later — but only the inline
  // slot pre-sizes its serving scratch: pool slots warm up when (and if)
  // RunTcpLoop actually starts their threads, so stdio/library users
  // don't pay for a pool they never run.
  workers_.reserve(num_tcp_workers_ + 1);
  for (size_t w = 0; w < num_tcp_workers_ + 1; ++w) {
    workers_.push_back(std::make_unique<WorkerState>(
        std::max<size_t>(options_.latency_window, 1)));
  }
  InlineWorker()->workspace.Reserve(options_.serve.m,
                                    options_.serve.block_items);
}

void RequestServer::InstallReloadSignalHandler() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSighup;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: a SIGHUP arriving mid-accept/mid-read surfaces as EINTR
  // so the serving loop can apply the reload promptly.
  ::sigaction(SIGHUP, &sa, nullptr);
}

void RequestServer::InstallShutdownSignalHandler() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnShutdownSignal;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART for the same reason as SIGHUP: the thread that takes
  // the signal must fall out of its blocking call and see the latch.
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

void RequestServer::RequestShutdown() {
  g_pending_shutdown.store(true, std::memory_order_relaxed);
}

bool RequestServer::ShutdownRequested() {
  return g_pending_shutdown.load(std::memory_order_relaxed);
}

bool RequestServer::ConsumeShutdownRequest() {
  return g_pending_shutdown.exchange(false, std::memory_order_relaxed);
}

bool RequestServer::ConsumePendingReload() {
  if (!g_pending_reload.exchange(false, std::memory_order_relaxed)) {
    return false;
  }
  // Failed models keep their previous generation serving; surface the
  // failure (SIGHUP has no reply channel) and do not count it as a
  // performed reload, so stats can't report a stale model as refreshed.
  const Status status = registry_->ReloadAll();
  if (!status.ok()) {
    std::fprintf(stderr, "hot reload failed: %s\n",
                 status.ToString().c_str());
    return true;
  }
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void RequestServer::RefreshLeases(WorkerState* w) {
  const uint64_t generation = registry_->generation();
  if (generation != w->seen_generation) {
    w->leases.clear();
    w->seen_generation = generation;
  }
}

std::shared_ptr<const ServableModel> RequestServer::LeaseModel(
    WorkerState* w, const std::string& name) {
  // Lock-free fast path: the lease survives until the registry publishes
  // a new generation, at which point this worker drops its cache and
  // re-resolves — draining onto the new model without a global pause.
  RefreshLeases(w);
  auto it = w->leases.find(name);
  if (it != w->leases.end()) return it->second;
  std::shared_ptr<const ServableModel> model = registry_->Get(name);
  if (model != nullptr) w->leases.emplace(name, model);
  return model;
}

Result<std::vector<ScoredItem>> RequestServer::RecommendOn(
    WorkerState* w, const std::string& model_name, uint32_t user,
    const ServeOptions& options,
    const std::vector<uint32_t>* exclude_override, int64_t* shard_out) {
  // Resolved exactly once per request: the whole answer comes from one
  // model generation even if a hot swap lands mid-request.
  std::shared_ptr<const ServableModel> model = LeaseModel(w, model_name);
  if (model == nullptr) {
    return Status::NotFound("no model named '" + model_name + "'");
  }
  if (user >= model->num_users()) {
    return Status::OutOfRange("user " + std::to_string(user) +
                              " out of range (model has " +
                              std::to_string(model->num_users()) +
                              " users)");
  }
  if (model->sharded) {
    w->shard_requests.fetch_add(1, std::memory_order_relaxed);
    if (shard_out != nullptr) *shard_out = model->shard_of(user);
  } else if (shard_out != nullptr) {
    *shard_out = -1;
  }
  std::span<const uint32_t> exclude =
      exclude_override != nullptr ? std::span<const uint32_t>(*exclude_override)
                                  : model->ExcludeRow(user);
  // More than the whole catalog is the whole catalog: clamping keeps a
  // hostile {"m":4000000000} from forcing a selection-buffer reservation
  // sized to the request instead of to the model.
  ServeOptions bounded = options;
  bounded.m = std::min(bounded.m, model->num_items());
  auto ranked =
      ServeTopM(*model->recommender, user, exclude, bounded, &w->workspace);
  return std::vector<ScoredItem>(ranked.begin(), ranked.end());
}

Result<std::vector<ScoredItem>> RequestServer::Recommend(
    const std::string& model_name, uint32_t user, const ServeOptions& options,
    const std::vector<uint32_t>* exclude_override) {
  return RecommendOn(InlineWorker(), model_name, user, options,
                     exclude_override);
}

std::string RequestServer::ErrorReply(WorkerState* w,
                                      const std::string& message) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok");
  writer.Bool(false);
  writer.Key("error");
  writer.String(message);
  writer.EndObject();
  w->errors.fetch_add(1, std::memory_order_relaxed);
  return writer.str();
}

std::string RequestServer::CodedErrorReply(WorkerState* w,
                                           const std::string& message,
                                           uint32_t code) {
  // Connection-level failures (413 oversize, 408 idle) carry a "code" so
  // clients can tell "fix your framing / you were reaped" apart from a
  // request error; the same convention 503 shed replies use.
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok");
  writer.Bool(false);
  writer.Key("error");
  writer.String(message);
  writer.Key("code");
  writer.UInt(code);
  writer.EndObject();
  w->errors.fetch_add(1, std::memory_order_relaxed);
  return writer.str();
}

std::string RequestServer::HandleRecommend(WorkerState* w,
                                           const JsonValue& request) {
  std::string model_name = "default";
  if (const JsonValue* m = request.Find("model"); m != nullptr) {
    if (!m->is_string()) return ErrorReply(w, "'model' must be a string");
    model_name = m->string();
  }
  auto m = GetUIntField(request, "m", options_.serve.m, UINT32_MAX);
  if (!m.ok()) return ErrorReply(w, m.status().message());

  ServeOptions serve = options_.serve;
  serve.m = static_cast<uint32_t>(*m);
  if (const JsonValue* ms = request.Find("min_score"); ms != nullptr) {
    if (!ms->is_number()) return ErrorReply(w, "'min_score' must be a number");
    serve.min_score = ms->number();
  }

  // Anonymous/new users recommend by history (fold-in) instead of by
  // stored user id — the two addressing modes are mutually exclusive.
  if (const JsonValue* history = request.Find("history"); history != nullptr) {
    if (request.Find("user") != nullptr) {
      return ErrorReply(w, "'user' and 'history' are mutually exclusive");
    }
    if (request.Find("exclude") != nullptr) {
      return ErrorReply(
          w, "'exclude' is not supported with 'history' (the history itself "
             "is excluded)");
    }
    return HandleHistory(w, *history, model_name, serve);
  }

  auto user = GetUIntField(request, "user", 0, UINT32_MAX);
  if (!user.ok()) return ErrorReply(w, user.status().message());
  if (request.Find("user") == nullptr) {
    return ErrorReply(w, "'user' or 'history' is required");
  }

  const std::vector<uint32_t>* exclude_override = nullptr;
  if (const JsonValue* ex = request.Find("exclude"); ex != nullptr) {
    if (!ex->is_array()) {
      return ErrorReply(w, "'exclude' must be an array of item ids");
    }
    w->exclude_scratch.clear();
    for (const JsonValue& e : ex->array()) {
      if (!e.is_number() || e.number() < 0.0 ||
          e.number() != std::floor(e.number()) || e.number() > UINT32_MAX) {
        return ErrorReply(w, "'exclude' entries must be item ids");
      }
      w->exclude_scratch.push_back(static_cast<uint32_t>(e.number()));
    }
    std::sort(w->exclude_scratch.begin(), w->exclude_scratch.end());
    w->exclude_scratch.erase(
        std::unique(w->exclude_scratch.begin(), w->exclude_scratch.end()),
        w->exclude_scratch.end());
    exclude_override = &w->exclude_scratch;
  }

  int64_t shard = -1;
  auto ranked = RecommendOn(w, model_name, static_cast<uint32_t>(*user), serve,
                            exclude_override, &shard);
  if (!ranked.ok()) return ErrorReply(w, ranked.status().ToString());

  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok");
  writer.Bool(true);
  writer.Key("model");
  writer.String(model_name);
  writer.Key("user");
  writer.UInt(*user);
  if (shard >= 0) {
    // Only sharded bindings carry the field: monolithic replies stay
    // byte-identical to every previous release, which the scale test's
    // oracle comparison and old clients both rely on.
    writer.Key("shard");
    writer.UInt(static_cast<uint64_t>(shard));
  }
  WriteRankedItems(&writer, *ranked);
  writer.EndObject();
  return writer.str();
}

std::string RequestServer::HandleHistory(WorkerState* w,
                                         const JsonValue& history,
                                         const std::string& model_name,
                                         const ServeOptions& serve) {
  if (!history.is_array()) {
    return ErrorReply(w, "'history' must be an array of item ids");
  }
  w->history_scratch.clear();
  for (const JsonValue& e : history.array()) {
    if (!e.is_number() || e.number() < 0.0 ||
        e.number() != std::floor(e.number()) || e.number() > UINT32_MAX) {
      return ErrorReply(w, "'history' entries must be item ids");
    }
    w->history_scratch.push_back(static_cast<uint32_t>(e.number()));
  }
  // One lease for the whole request, same as the stored-user path.
  std::shared_ptr<const ServableModel> model = LeaseModel(w, model_name);
  if (model == nullptr) {
    return ErrorReply(
        w, Status::NotFound("no model named '" + model_name + "'").ToString());
  }
  if (model->fold_in == nullptr) {
    return ErrorReply(w, Status::FailedPrecondition(
                             "model '" + model_name +
                             "' does not support fold-in (not an OCuLaR "
                             "probability model)")
                             .ToString());
  }
  const FoldInContext& ctx = *model->fold_in;
  const HistorySanitizeResult sanitized =
      SanitizeHistory(&w->history_scratch, ctx.num_items());
  if (sanitized.dropped_out_of_range > 0) {
    w->dropped_history_ids.fetch_add(sanitized.dropped_out_of_range,
                                     std::memory_order_relaxed);
  }
  w->fold_in_requests.fetch_add(1, std::memory_order_relaxed);

  auto rec = RecommendForHistoryInto(
      ctx, w->history_scratch, serve.m, serve.min_score, serve.block_items,
      options_.fold_in, &w->fold_in, &w->workspace.tile,
      &w->workspace.selection);
  if (!rec.ok()) return ErrorReply(w, rec.status().ToString());

  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok");
  writer.Bool(true);
  writer.Key("model");
  writer.String(model_name);
  writer.Key("folded");
  writer.Bool(rec->folded);
  writer.Key("dropped");
  writer.UInt(sanitized.dropped_out_of_range);
  WriteRankedItems(&writer, rec->items);
  writer.EndObject();
  return writer.str();
}

Result<RequestServer::UpdateOutcome> RequestServer::ApplyShardedUpdate(
    const ServableModel& model, const std::string& model_name,
    const std::vector<std::pair<uint32_t, uint32_t>>& adds,
    uint32_t num_users, uint32_t num_items) {
  // A sharded binding never grows online: the shard ranges and the shared
  // item factors are fixed at save time, so an id past either dimension
  // needs an offline retrain + reshard (`ocular_cli shard`), not an
  // update.
  if (num_users > model.num_users() || num_items > model.num_items()) {
    return Status::FailedPrecondition(
        "sharded model '" + model_name +
        "' cannot grow online; retrain and reshard offline (ocular_cli "
        "shard)");
  }
  for (auto [u, i] : adds) {
    if (u >= model.num_users() || i >= model.num_items()) {
      return Status::FailedPrecondition(
          "add (" + std::to_string(u) + ", " + std::to_string(i) +
          ") is outside sharded model '" + model_name + "' (" +
          std::to_string(model.num_users()) + " x " +
          std::to_string(model.num_items()) +
          "); retrain and reshard offline (ocular_cli shard)");
    }
  }
  if (model.fold_in == nullptr) {
    return Status::FailedPrecondition(
        "sharded update refreshes users by fold-in, but model '" + model_name +
        "' has no fold-in context (not an OCuLaR probability model)");
  }
  if (fault::Maybe("update.apply")) return fault::InjectedError("update.apply");

  // Merge the deltas into a private copy of the training matrix: a
  // touched user's fold-in history is its FULL updated row (Section V's
  // new-user solve against fixed item factors), and the republish rebinds
  // the merged matrix as the exclusion source.
  CooBuilder coo;
  coo.Reserve(model.train->nnz() + adds.size());
  for (auto [u, i] : model.train->ToPairs()) coo.Add(u, i);
  for (auto [u, i] : adds) coo.Add(u, i);
  OCULAR_ASSIGN_OR_RETURN(
      auto entries, coo.Finalize(model.num_users(), model.num_items()));
  auto merged = std::make_shared<const CsrMatrix>(CsrMatrix::FromCoo(entries));

  std::vector<uint32_t> touched_users;
  touched_users.reserve(adds.size());
  for (auto [u, i] : adds) touched_users.push_back(u);
  std::sort(touched_users.begin(), touched_users.end());
  touched_users.erase(
      std::unique(touched_users.begin(), touched_users.end()),
      touched_users.end());

  const FoldInContext& ctx = *model.fold_in;
  FoldInWorkspace fold_ws;
  ShardSetManifest manifest = model.manifest;
  uint32_t shards_touched = 0;
  size_t next = 0;
  for (uint32_t s = 0;
       s < model.shard_map.num_shards() && next < touched_users.size(); ++s) {
    const uint32_t begin = model.shard_map.begin(s);
    const uint32_t end = model.shard_map.end(s);
    if (touched_users[next] >= end) continue;

    // Copy-on-write per shard: the live mapping is never written. Only
    // shards owning a touched user are copied, folded, and rewritten —
    // the untouched siblings keep their files, fingerprints and mappings.
    ConstMatrixView rows = model.shard_stores[s]->user_factors();
    DenseMatrix block(rows.rows(), rows.cols());
    for (uint32_t r = 0; r < rows.rows(); ++r) {
      std::span<const double> src = rows.Row(r);
      std::copy(src.begin(), src.end(), block.Row(r).begin());
    }
    for (; next < touched_users.size() && touched_users[next] < end; ++next) {
      const uint32_t u = touched_users[next];
      const std::span<const uint32_t> history = merged->Row(u);
      fold_ws.Reserve(ctx.dims(), history.size());
      OCULAR_RETURN_IF_ERROR(
          FoldInUserInto(ctx, history, options_.fold_in, &fold_ws));
      std::copy(fold_ws.f.begin(), fold_ws.f.end(),
                block.Row(u - begin).begin());
    }

    // Same publish discipline as the monolithic retrain — write-temp,
    // fsync, verify-open, durable-rename — applied to ONE shard file.
    const std::string shard_path =
        ShardSetResolve(model.model_path, manifest.shards[s].file);
    const std::string tmp_path = shard_path + ".update.tmp";
    OCULAR_RETURN_IF_ERROR(
        SaveShardUserFactors(model.meta(), block, tmp_path));
    Status durable = fs::FsyncFile(tmp_path);
    if (durable.ok()) {
      if (auto verify = ModelStore::Open(tmp_path); !verify.ok()) {
        durable = Status::IOError("shard update artifact failed verification: " +
                                  verify.status().ToString());
      }
    }
    if (durable.ok()) durable = fs::DurableRename(tmp_path, shard_path);
    if (!durable.ok()) {
      if (::access(tmp_path.c_str(), F_OK) == 0) ::remove(tmp_path.c_str());
      // Shards already renamed this call now disagree with the published
      // manifest on disk; the serving generation is untouched, and the
      // next open refuses with a fingerprint mismatch instead of serving
      // the torn set (OPERATIONS.md covers the recovery).
      return durable;
    }
    OCULAR_ASSIGN_OR_RETURN(manifest.shards[s].fingerprint,
                            fs::FileFingerprint(shard_path));
    ++shards_touched;
  }

  // Manifest last, durably: readers open either the old consistent set or
  // the new one, never a mix.
  if (shards_touched > 0) {
    const std::string manifest_tmp = model.model_path + ".update.tmp";
    OCULAR_RETURN_IF_ERROR(SaveShardSetManifest(manifest, manifest_tmp));
    Status durable = fs::FsyncFile(manifest_tmp);
    if (durable.ok()) {
      durable = fs::DurableRename(manifest_tmp, model.model_path);
    }
    if (!durable.ok()) {
      if (::access(manifest_tmp.c_str(), F_OK) == 0) {
        ::remove(manifest_tmp.c_str());
      }
      return durable;
    }
  }

  // The per-shard generation swap: Load aliases every untouched member
  // from the serving generation and reopens only the rewritten files.
  OCULAR_RETURN_IF_ERROR(registry_->Load(model_name, model.model_path, merged));
  updates_.fetch_add(1, std::memory_order_relaxed);

  UpdateOutcome outcome;
  outcome.num_users = model.num_users();
  outcome.num_items = model.num_items();
  outcome.sweeps_run = 0;
  outcome.converged = true;
  outcome.sharded = true;
  outcome.shards_touched = shards_touched;
  outcome.users_refreshed = static_cast<uint32_t>(touched_users.size());
  return outcome;
}

Result<RequestServer::UpdateOutcome> RequestServer::RetrainAndPublish(
    const ServableModel& model, const std::string& model_name,
    const std::shared_ptr<const CsrMatrix>& updated_train, uint32_t users,
    uint32_t items, uint32_t sweeps, uint64_t seed, bool* published) {
  *published = false;
  // Copy-on-write: the live mapping is never touched — the update
  // materializes a private copy, retrains it, and publishes the result as
  // a new generation.
  if (fault::Maybe("update.apply")) return fault::InjectedError("update.apply");
  OCULAR_ASSIGN_OR_RETURN(LoadedModel loaded, model.store.MaterializeOcular());

  OcularConfig config = loaded.config;
  config.max_sweeps = sweeps;
  ExpandOptions expand;
  expand.seed = seed;  // 0 = shape-derived stream (see ExpandOptions)
  OCULAR_ASSIGN_OR_RETURN(
      OcularFitResult fit,
      UpdateModel(loaded.model, *updated_train, config, expand));

  // Persist write-temp, fsync, verify, durable-rename: a crash mid-write
  // can never leave a torn model file behind the running mapping, a crash
  // right after the ack can never lose the renamed artifact to unflushed
  // page cache, and a silently corrupted write can never be published
  // (the verify-open checks every section checksum before the swap).
  const std::string tmp_path = model.model_path + ".update.tmp";
  OCULAR_RETURN_IF_ERROR(SaveModelBinary(fit.model, config, tmp_path));
  Status durable = fs::FsyncFile(tmp_path);
  if (durable.ok()) {
    if (auto verify = ModelStore::Open(tmp_path); !verify.ok()) {
      durable = Status::IOError("update artifact failed verification: " +
                                verify.status().ToString());
    }
  }
  if (durable.ok()) durable = fs::DurableRename(tmp_path, model.model_path);
  if (!durable.ok()) {
    // DurableRename can fail on either side of the rename (the dirsync
    // comes after it). The tmp file still existing proves the rename
    // never happened — clean up and report an unpublished failure; tmp
    // gone means the artifact DID move, and only its directory-entry
    // durability is in doubt — treat as published (fs_util.h contract)
    // so the journal commits what clients will observe.
    if (::access(tmp_path.c_str(), F_OK) == 0) {
      ::remove(tmp_path.c_str());
      return durable;
    }
    std::fprintf(stderr,
                 "update on '%s': published but directory sync failed: %s\n",
                 model_name.c_str(), durable.ToString().c_str());
  }
  *published = true;
  // The same generation swap as SIGHUP reload: in-flight requests drain
  // on their leased mapping, workers re-resolve lock-free.
  OCULAR_RETURN_IF_ERROR(
      registry_->Load(model_name, model.model_path, updated_train));
  updates_.fetch_add(1, std::memory_order_relaxed);

  UpdateOutcome outcome;
  outcome.num_users = users;
  outcome.num_items = items;
  outcome.sweeps_run = fit.sweeps_run;
  outcome.converged = fit.converged;
  return outcome;
}

Result<RequestServer::UpdateOutcome> RequestServer::ApplyUpdate(
    WorkerState* w, const std::string& model_name,
    const std::vector<std::pair<uint32_t, uint32_t>>& adds,
    uint32_t num_users, uint32_t num_items, uint32_t sweeps, uint64_t seed) {
  // One update at a time; concurrent recommends keep serving the current
  // generation and never take this mutex.
  std::lock_guard<std::mutex> lock(update_mu_);
  std::shared_ptr<const ServableModel> model = LeaseModel(w, model_name);
  if (model == nullptr) {
    return Status::NotFound("no model named '" + model_name + "'");
  }
  if (model->train == nullptr) {
    return Status::FailedPrecondition(
        "update requires a dataset bound to model '" + model_name +
        "' (--datasets): the interaction deltas extend the training matrix");
  }
  if (model->sharded) {
    // Sharded bindings refresh touched users by fold-in against the fixed
    // shared item factors and republish only the rewritten shard files.
    // The update journal stays out of this path — it is a single-artifact
    // recovery mechanism keyed on one file fingerprint; sharded updates
    // are instead made durable per shard file (write-temp + fsync +
    // verify + rename), with the manifest republished last.
    return ApplyShardedUpdate(*model, model_name, adds, num_users, num_items);
  }
  uint32_t users = std::max(model->num_users(), num_users);
  uint32_t items = std::max(model->num_items(), num_items);
  CooBuilder coo;
  coo.Reserve(model->train->nnz() + adds.size());
  for (auto [u, i] : model->train->ToPairs()) coo.Add(u, i);
  for (auto [u, i] : adds) {
    users = std::max(users, u + 1);
    items = std::max(items, i + 1);
    coo.Add(u, i);
  }
  OCULAR_ASSIGN_OR_RETURN(auto entries, coo.Finalize(users, items));
  auto updated_train =
      std::make_shared<const CsrMatrix>(CsrMatrix::FromCoo(entries));

  // Write-ahead: the full replay recipe is durable before the retrain
  // starts, so a crash anywhere past this point can be recovered to the
  // exact artifact this call would have published (RecoverJournal). An
  // append failure fails the update — the client's ack must never be
  // backed by nothing but RAM.
  UpdateJournal journal;
  const bool journaling = options_.update_journal;
  if (journaling) {
    UpdateRecord record;
    OCULAR_ASSIGN_OR_RETURN(record.base_fingerprint,
                            fs::FileFingerprint(model->model_path));
    record.seed = seed;
    record.num_users = users;
    record.num_items = items;
    record.sweeps = sweeps;
    record.adds = adds;
    OCULAR_RETURN_IF_ERROR(
        journal.Open(UpdateJournal::PathFor(model->model_path)));
    OCULAR_RETURN_IF_ERROR(journal.AppendUpdate(record));
  }

  bool published = false;
  Result<UpdateOutcome> outcome =
      RetrainAndPublish(*model, model_name, updated_train, users, items,
                        sweeps, seed, &published);
  if (journaling) {
    // The journal's verdict follows the artifact, not the reply: a
    // failure AFTER the rename still commits (clients will observe the
    // new artifact), a clean failure before it aborts so recovery never
    // replays an update the client saw fail. A failed closing append
    // merely leaves the record pending — the fingerprint check at next
    // start resolves it the right way, so serving continues.
    const Status closing = (outcome.ok() || published) ? journal.AppendCommit()
                                                       : journal.AppendAbort();
    if (!closing.ok()) {
      std::fprintf(stderr, "update journal on '%s': %s\n", model_name.c_str(),
                   closing.ToString().c_str());
    }
  }
  return outcome;
}

Result<JournalRecoveryStats> RequestServer::RecoverJournal(
    const std::string& model_name) {
  std::lock_guard<std::mutex> lock(update_mu_);
  JournalRecoveryStats stats;
  std::shared_ptr<const ServableModel> model = registry_->Get(model_name);
  if (model == nullptr) {
    return Status::NotFound("no model named '" + model_name + "'");
  }
  const std::string journal_path = UpdateJournal::PathFor(model->model_path);
  OCULAR_ASSIGN_OR_RETURN(UpdateJournal::Plan plan,
                          UpdateJournal::LoadPlan(journal_path));
  stats.torn_tail = plan.torn_tail;
  if (plan.applied.empty() && !plan.has_pending) return stats;
  if (model->train == nullptr) {
    return Status::FailedPrecondition(
        "journal " + journal_path + " has records but model '" + model_name +
        "' has no bound dataset (--datasets): the deltas extend the training "
        "matrix");
  }

  // A trailing record with no commit/abort is the crash window. The
  // artifact fingerprint decides which side of the rename the crash hit:
  // still equal to the record's base means the retrain never published —
  // replay it; moved past it means the rename landed and only the commit
  // record is missing — the adds are law, heal the journal.
  bool replay_pending = false;
  if (plan.has_pending) {
    OCULAR_ASSIGN_OR_RETURN(const uint64_t fingerprint,
                            fs::FileFingerprint(model->model_path));
    if (fingerprint == plan.pending.base_fingerprint) {
      replay_pending = true;
    } else {
      plan.applied.push_back(plan.pending);
      plan.has_pending = false;
      stats.healed_commit = true;
    }
  }

  // Re-merge every applied record's deltas into the training base: the
  // --datasets CSV is the original snapshot and knows nothing about
  // updates applied by previous incarnations. CooBuilder::Finalize sorts
  // and deduplicates, so the merge is order-insensitive and idempotent —
  // recovering twice yields the same canonical matrix.
  uint32_t users = model->train->num_rows();
  uint32_t items = model->train->num_cols();
  size_t extra = 0;
  for (const UpdateRecord& record : plan.applied) extra += record.adds.size();
  CooBuilder coo;
  coo.Reserve(model->train->nnz() + extra);
  for (auto [u, i] : model->train->ToPairs()) coo.Add(u, i);
  for (const UpdateRecord& record : plan.applied) {
    users = std::max(users, record.num_users);
    items = std::max(items, record.num_items);
    for (auto [u, i] : record.adds) coo.Add(u, i);
  }
  OCULAR_ASSIGN_OR_RETURN(auto entries, coo.Finalize(users, items));
  auto merged = std::make_shared<const CsrMatrix>(CsrMatrix::FromCoo(entries));
  stats.applied_merged = plan.applied.size();

  if (!replay_pending) {
    if (!plan.applied.empty()) {
      OCULAR_RETURN_IF_ERROR(
          registry_->Load(model_name, model->model_path, merged));
      journal_recovered_.fetch_add(plan.applied.size(),
                                   std::memory_order_relaxed);
    }
    if (stats.healed_commit) {
      UpdateJournal journal;
      OCULAR_RETURN_IF_ERROR(journal.Open(journal_path));
      OCULAR_RETURN_IF_ERROR(journal.AppendCommit());
    }
    return stats;
  }

  // Replay: rebuild the pending update's training matrix on top of the
  // recovered base and run the exact pipeline the crashed process was
  // running — same adds, same dims, same sweeps, same seed, same base
  // artifact — so the recovered generation is bit-identical to what the
  // lost ack promised.
  uint32_t replay_users = std::max(users, plan.pending.num_users);
  uint32_t replay_items = std::max(items, plan.pending.num_items);
  CooBuilder replay_coo;
  replay_coo.Reserve(merged->nnz() + plan.pending.adds.size());
  for (auto [u, i] : merged->ToPairs()) replay_coo.Add(u, i);
  for (auto [u, i] : plan.pending.adds) replay_coo.Add(u, i);
  OCULAR_ASSIGN_OR_RETURN(auto replay_entries,
                          replay_coo.Finalize(replay_users, replay_items));
  auto replay_train =
      std::make_shared<const CsrMatrix>(CsrMatrix::FromCoo(replay_entries));
  bool published = false;
  Result<UpdateOutcome> outcome = RetrainAndPublish(
      *model, model_name, replay_train, replay_users, replay_items,
      plan.pending.sweeps, plan.pending.seed, &published);
  if (!outcome.ok() && !published) {
    // Leave the record pending: the next start retries the replay. The
    // caller decides whether to serve without the promised update.
    return outcome.status();
  }
  UpdateJournal journal;
  OCULAR_RETURN_IF_ERROR(journal.Open(journal_path));
  OCULAR_RETURN_IF_ERROR(journal.AppendCommit());
  stats.replayed_pending = true;
  journal_recovered_.fetch_add(plan.applied.size(), std::memory_order_relaxed);
  journal_replays_.fetch_add(1, std::memory_order_relaxed);
  return stats;
}

std::string RequestServer::HandleUpdate(WorkerState* w,
                                        const JsonValue& request) {
  std::string model_name = "default";
  if (const JsonValue* m = request.Find("model"); m != nullptr) {
    if (!m->is_string()) return ErrorReply(w, "'model' must be a string");
    model_name = m->string();
  }
  const JsonValue* adds_field = request.Find("adds");
  if (adds_field == nullptr || !adds_field->is_array()) {
    return ErrorReply(w, "'adds' must be an array of [user, item] pairs");
  }
  std::vector<std::pair<uint32_t, uint32_t>> adds;
  adds.reserve(adds_field->array().size());
  for (const JsonValue& pair : adds_field->array()) {
    if (!pair.is_array() || pair.array().size() != 2) {
      return ErrorReply(w, "'adds' must be an array of [user, item] pairs");
    }
    uint32_t ids[2];
    for (int n = 0; n < 2; ++n) {
      const JsonValue& v = pair.array()[n];
      if (!v.is_number() || v.number() < 0.0 ||
          v.number() != std::floor(v.number()) || v.number() > UINT32_MAX) {
        return ErrorReply(w, "'adds' entries must be non-negative ids");
      }
      ids[n] = static_cast<uint32_t>(v.number());
    }
    adds.emplace_back(ids[0], ids[1]);
  }
  auto num_users = GetUIntField(request, "num_users", 0, UINT32_MAX);
  if (!num_users.ok()) return ErrorReply(w, num_users.status().message());
  auto num_items = GetUIntField(request, "num_items", 0, UINT32_MAX);
  if (!num_items.ok()) return ErrorReply(w, num_items.status().message());
  auto sweeps =
      GetUIntField(request, "sweeps", options_.update_sweeps, 100000);
  if (!sweeps.ok()) return ErrorReply(w, sweeps.status().message());
  if (*sweeps == 0) return ErrorReply(w, "'sweeps' must be at least 1");
  // JSON numbers are doubles: cap explicit seeds at 2^53 so every
  // accepted value round-trips exactly.
  auto seed = GetUIntField(request, "seed", 0, uint64_t{1} << 53);
  if (!seed.ok()) return ErrorReply(w, seed.status().message());

  const double start_us = NowMicros();
  auto outcome = ApplyUpdate(w, model_name, adds,
                             static_cast<uint32_t>(*num_users),
                             static_cast<uint32_t>(*num_items),
                             static_cast<uint32_t>(*sweeps), *seed);
  if (!outcome.ok()) return ErrorReply(w, outcome.status().ToString());

  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok");
  writer.Bool(true);
  writer.Key("model");
  writer.String(model_name);
  writer.Key("users");
  writer.UInt(outcome->num_users);
  writer.Key("items");
  writer.UInt(outcome->num_items);
  writer.Key("sweeps_run");
  writer.UInt(outcome->sweeps_run);
  writer.Key("converged");
  writer.Bool(outcome->converged);
  if (outcome->sharded) {
    writer.Key("shards_touched");
    writer.UInt(outcome->shards_touched);
    writer.Key("users_refreshed");
    writer.UInt(outcome->users_refreshed);
  }
  writer.Key("publish_us");
  writer.Double(NowMicros() - start_us);
  writer.EndObject();
  return writer.str();
}

std::string RequestServer::HandleModels() {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("models");
  w.BeginArray();
  for (const std::string& name : registry_->Names()) {
    std::shared_ptr<const ServableModel> model = registry_->Get(name);
    if (model == nullptr) continue;  // raced with an unload
    w.BeginObject();
    w.Key("name");
    w.String(name);
    w.Key("algorithm");
    w.String(model->meta().algorithm);
    w.Key("users");
    w.UInt(model->num_users());
    w.Key("items");
    w.UInt(model->num_items());
    w.Key("k");
    w.UInt(model->k());
    w.Key("mapped_bytes");
    w.UInt(model->mapped_bytes());
    w.Key("sharded");
    w.Bool(model->sharded);
    w.Key("shards");
    w.UInt(model->num_shards());
    w.Key("path");
    w.String(model->model_path);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string RequestServer::HandlePing() {
  // The health-probe verb: a fleet front tier pings replicas on an
  // interval, so the reply must stay cheap and unblockable — no model
  // lease is resolved (a probe cannot stall behind a reload or an
  // update publish) and no per-worker scratch is touched. uptime_ms
  // lets a prober tell a long-lived replica from one that silently
  // restarted; generation says which model swap it is serving.
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("uptime_ms");
  w.UInt(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count()));
  w.Key("generation");
  w.UInt(registry_->generation());
  w.EndObject();
  return w.str();
}

std::string RequestServer::HandleStats() {
  const DaemonStatsSnapshot snapshot = Stats();
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("models_loaded");
  w.UInt(snapshot.models_loaded);
  w.Key("workers");
  w.UInt(snapshot.workers);
  w.Key("requests_served");
  w.UInt(snapshot.requests_served);
  w.Key("errors");
  w.UInt(snapshot.errors);
  w.Key("reloads");
  w.UInt(snapshot.reloads);
  w.Key("connections_shed");
  w.UInt(snapshot.connections_shed);
  w.Key("connections_timed_out");
  w.UInt(snapshot.connections_timed_out);
  w.Key("connections_open");
  w.UInt(snapshot.connections_open);
  w.Key("connections_capped");
  w.UInt(snapshot.connections_capped);
  w.Key("connections_slow_closed");
  w.UInt(snapshot.connections_slow_closed);
  w.Key("accept_emfile");
  w.UInt(snapshot.accept_emfile);
  w.Key("peak_outbound_bytes");
  w.UInt(snapshot.peak_outbound_bytes);
  w.Key("fold_in_requests");
  w.UInt(snapshot.fold_in_requests);
  w.Key("history_dropped_ids");
  w.UInt(snapshot.history_dropped_ids);
  w.Key("shard_requests");
  w.UInt(snapshot.shard_requests);
  w.Key("updates");
  w.UInt(snapshot.updates);
  w.Key("journal_recovered");
  w.UInt(snapshot.journal_recovered);
  w.Key("journal_replays");
  w.UInt(snapshot.journal_replays);
  w.Key("p50_latency_us");
  w.Double(snapshot.p50_latency_us);
  w.Key("p99_latency_us");
  w.Double(snapshot.p99_latency_us);
  w.EndObject();
  return w.str();
}

std::string RequestServer::HandleReload(WorkerState* w) {
  Status status = registry_->ReloadAll();
  if (!status.ok()) return ErrorReply(w, status.ToString());
  reloads_.fetch_add(1, std::memory_order_relaxed);
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("ok");
  writer.Bool(true);
  writer.Key("reloaded");
  writer.UInt(registry_->size());
  writer.EndObject();
  return writer.str();
}

std::string RequestServer::HandleLine(const std::string& line) {
  bool quit = false;
  std::string reply = HandleLineOn(InlineWorker(), line, &quit);
  if (quit) quit_requested_ = true;
  return reply;
}

std::string RequestServer::HandleLineOn(WorkerState* w,
                                        const std::string& line, bool* quit) {
  const double start_us = NowMicros();
  // Injected handling stall ("daemon.handle"): the worker sleeps a fixed
  // second before answering — a hung-but-alive replica (allocator stall,
  // page-cache miss storm, runaway request ahead in the pipeline), which
  // is exactly what the fleet front tier's deadlines and hedged requests
  // are tested against. The kill@C grammar turns the same point into a
  // mid-request SIGKILL window: the process dies while a request is in
  // flight and the reply never leaves.
  if (fault::Maybe("daemon.handle")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kHandleStallMs));
  }
  std::string reply;
  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    reply = ErrorReply(w, parsed.status().ToString());
  } else if (!parsed->is_object()) {
    reply = ErrorReply(w, "request must be a JSON object");
  } else {
    std::string cmd = "recommend";
    bool bad_cmd = false;
    if (const JsonValue* c = parsed->Find("cmd"); c != nullptr) {
      if (c->is_string()) {
        cmd = c->string();
      } else {
        bad_cmd = true;
      }
    }
    if (bad_cmd) {
      reply = ErrorReply(w, "'cmd' must be a string");
    } else if (cmd == "recommend") {
      reply = HandleRecommend(w, *parsed);
    } else if (cmd == "update") {
      reply = HandleUpdate(w, *parsed);
    } else if (cmd == "models") {
      reply = HandleModels();
    } else if (cmd == "ping") {
      reply = HandlePing();
    } else if (cmd == "stats") {
      reply = HandleStats();
    } else if (cmd == "reload") {
      reply = HandleReload(w);
    } else if (cmd == "quit") {
      *quit = true;
      JsonWriter writer;
      writer.BeginObject();
      writer.Key("ok");
      writer.Bool(true);
      writer.Key("bye");
      writer.Bool(true);
      writer.EndObject();
      reply = writer.str();
    } else {
      reply = ErrorReply(w, "unknown cmd '" + cmd + "'");
    }
  }
  w->requests.fetch_add(1, std::memory_order_relaxed);
  w->latency.Record(NowMicros() - start_us);
  return reply;
}

DaemonStatsSnapshot RequestServer::Stats() const {
  DaemonStatsSnapshot snapshot;
  snapshot.models_loaded = registry_->size();
  snapshot.workers = num_tcp_workers_;
  snapshot.reloads = reloads_.load(std::memory_order_relaxed);
  snapshot.connections_shed = shed_.load(std::memory_order_relaxed);
  snapshot.connections_timed_out = timed_out_.load(std::memory_order_relaxed);
  snapshot.connections_open = open_conns_.load(std::memory_order_relaxed);
  snapshot.connections_capped = capped_.load(std::memory_order_relaxed);
  snapshot.connections_slow_closed =
      slow_closed_.load(std::memory_order_relaxed);
  snapshot.accept_emfile = accept_emfile_.load(std::memory_order_relaxed);
  snapshot.peak_outbound_bytes =
      peak_outbound_.load(std::memory_order_relaxed);
  snapshot.updates = updates_.load(std::memory_order_relaxed);
  snapshot.journal_recovered =
      journal_recovered_.load(std::memory_order_relaxed);
  snapshot.journal_replays = journal_replays_.load(std::memory_order_relaxed);
  std::vector<double> window;
  for (const auto& w : workers_) {
    snapshot.requests_served += w->requests.load(std::memory_order_relaxed);
    snapshot.errors += w->errors.load(std::memory_order_relaxed);
    snapshot.fold_in_requests +=
        w->fold_in_requests.load(std::memory_order_relaxed);
    snapshot.history_dropped_ids +=
        w->dropped_history_ids.load(std::memory_order_relaxed);
    snapshot.shard_requests += w->shard_requests.load(std::memory_order_relaxed);
    w->latency.AppendWindowTo(&window);
  }
  snapshot.p50_latency_us = MergedPercentile(&window, 0.50);
  snapshot.p99_latency_us = MergedPercentile(&window, 0.99);
  return snapshot;
}

void RequestServer::RunStdioLoop(std::istream& in, std::ostream& out) {
  std::string line;
  std::string partial;  // prefix extracted before an interrupted read
  while (!quit_requested_) {
    ConsumePendingReload();
    if (g_pending_shutdown.exchange(false, std::memory_order_relaxed)) {
      // SIGTERM drain, stdio flavor: every request read so far has been
      // answered and flushed (one write per line), so just stop reading.
      std::fprintf(stderr, "drained: %s\n", HandleStats().c_str());
      break;
    }
    errno = 0;
    if (!std::getline(in, line)) {
      // A SIGHUP arriving while blocked in getline fails the stream with
      // EINTR (the handler is installed without SA_RESTART); that is a
      // reload request, not end of input — recover and keep serving. The
      // stream flags are not trustworthy here (libstdc++ reports the
      // interrupted read as eof), so the errno check decides, and the
      // C-stdio error state backing std::cin must be cleared too. Any
      // half-read line is carried over so the request stream stays
      // aligned.
      if (errno == EINTR) {
        partial += line;
        in.clear();
        if (&in == &std::cin) std::clearerr(stdin);
        continue;
      }
      break;
    }
    if (!partial.empty()) {
      line = partial + line;
      partial.clear();
    }
    if (line.empty()) continue;
    out << HandleLine(line) << '\n';
    out.flush();
  }
}

namespace {

// Replies accumulate into a per-batch buffer and go out in chunks of at
// most this many bytes: a burst of tiny requests with huge answers (a
// full-catalog `m`) cannot amplify into an unbounded buffer — peak memory
// per dispatched batch is one flush window, exactly the PR 5 bound.
constexpr size_t kReplyFlushBytes = 256 << 10;

// How long an injected "daemon.epoll" stall parks the IO thread — long
// enough to back bytes up into connection buffers (what the drill wants),
// short enough that nothing times out around it.
constexpr uint32_t kEpollStallMs = 100;

// epoll event tags below kFirstConnId are the two non-connection fds.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kFirstConnId = 2;

// A drain (SIGTERM) that cannot finish — a peer that never drains the
// replies it is owed — is force-closed after this long.
constexpr uint32_t kDrainForceCloseMs = 30000;

// Everything the IO thread knows about one connection. IO-thread-only:
// workers never see this struct — they get copies of complete request
// lines and hand back reply bytes through the completion queue.
struct EpollConn {
  uint64_t id = 0;
  int fd = -1;
  // Unparsed inbound bytes; [0, scan_from) is already known newline-free,
  // so each received chunk is scanned exactly once (framing stays linear
  // in request size even for a byte-at-a-time sender).
  std::string inbound;
  size_t scan_from = 0;
  // Complete request lines parsed but not yet dispatched to a worker.
  std::vector<std::string> ready;
  size_t ready_bytes = 0;
  // Reply bytes not yet written; [0, out_off) already went out.
  std::string outbound;
  size_t out_off = 0;
  // The idle clock counts COMPLETED request lines, not received bytes: a
  // slow-loris peer dribbling a byte a second never advances it.
  std::chrono::steady_clock::time_point last_request;
  // Last instant the outbound buffer shrank (or became nonempty) — the
  // slow-consumer write-progress clock.
  std::chrono::steady_clock::time_point last_progress;
  // epoll interest currently armed (EPOLLIN/EPOLLOUT mask).
  uint32_t armed = EPOLLIN;
  // Exactly one dispatched batch may be in flight per connection — that
  // is what keeps pipelined replies in request order with no sequencing.
  bool inflight = false;
  // No more bytes will be read: peer EOF, oversize line, or drain.
  bool read_closed = false;
  // Close once the outbound buffer drains (a `quit` verb was answered).
  bool quit = false;
  // fd already closed; the entry lingers only until the worker's final
  // completion for it arrives, so completions never dangle.
  bool dead = false;
  // A deferred 413/408 reply to emit after in-flight lines are answered.
  uint32_t pending_fail_code = 0;
  std::string pending_fail_msg;
};

// One dispatched batch: every complete line a connection had ready.
struct ConnWork {
  uint64_t conn_id = 0;
  std::vector<std::string> lines;
};

// One chunk of a batch's replies, handed back worker → IO thread.
struct Completion {
  uint64_t conn_id = 0;
  std::string replies;
  bool final_piece = false;  // the batch is done; the conn may redispatch
  bool quit = false;         // a `quit` verb was in the batch
};

}  // namespace

/// The epoll readiness loop behind RequestServer::RunTcpLoop (PR 10).
///
/// One IO thread owns every socket and all per-connection state; the
/// shared-nothing workers own only compute. Data flow:
///
///   epoll_wait → read() until EAGAIN → extract complete lines
///     → dispatch ONE batch per connection to the work queue
///   worker: HandleLineOn per line → completion chunks (≤256 KiB)
///     → eventfd wakeup → IO thread appends to the conn's outbound
///     → send() until EAGAIN, EPOLLOUT for the rest
///
/// Robustness is structural: admission cap + EMFILE parachute shed with
/// 503 before a connection exists; a full work queue is backpressure
/// (lines wait on the connection, re-dispatched after completions);
/// oversized lines get 413; idle/slowloris peers get 408 from the sweep;
/// slow consumers (outbound cap or write-progress deadline) are dropped.
struct RequestServerEpollCore {
  using Clock = std::chrono::steady_clock;

  RequestServer* server;
  int listener = -1;
  uint64_t max_accepts = 0;

  int ep = -1;
  int wake_fd = -1;
  // The EMFILE parachute: one fd held in reserve so accept() can always
  // be made to succeed once, letting the victim be told "come back later"
  // (503 + retry_after_ms) instead of being stranded in the backlog while
  // the listener spins on EMFILE.
  int reserve_fd = -1;
  bool listening = true;
  bool draining = false;
  Clock::time_point drain_start;
  uint64_t accepted = 0;
  uint64_t next_id = kFirstConnId;
  std::unordered_map<uint64_t, std::unique_ptr<EpollConn>> conns;
  BoundedQueue<ConnWork*> work_queue;
  std::mutex completion_mu;
  std::deque<Completion> completions;
  // Set when a dispatch found the work queue full; cleared by the retry
  // sweep that runs after every completion batch.
  bool dispatch_stalled = false;
  // Connections closed this iteration, pending the ReapDead() erase.
  std::vector<uint64_t> dead_ids;
  Clock::time_point last_sweep = Clock::now();
  Status status = Status::OK();

  RequestServerEpollCore(RequestServer* s, int listener_fd, uint64_t accepts)
      : server(s),
        listener(listener_fd),
        max_accepts(accepts),
        work_queue(s->options_.accept_queue) {}

  const RequestServer::Options& opts() const { return server->options_; }

  // ---- worker side -------------------------------------------------

  void PushCompletion(uint64_t conn_id, std::string replies, bool final_piece,
                      bool quit) {
    {
      std::lock_guard<std::mutex> lock(completion_mu);
      completions.push_back(
          Completion{conn_id, std::move(replies), final_piece, quit});
    }
    const uint64_t one = 1;
    // eventfd is a counter: concurrent worker wakeups coalesce, and the
    // IO thread drains the count with one read.
    (void)!::write(wake_fd, &one, sizeof(one));
  }

  void ServeBatch(RequestServer::WorkerState* w, ConnWork* work) {
    w->reply_batch.clear();
    bool quit = false;
    for (const std::string& line : work->lines) {
      bool q = false;
      w->reply_batch += server->HandleLineOn(w, line, &q);
      w->reply_batch.push_back('\n');
      if (w->reply_batch.size() >= kReplyFlushBytes) {
        PushCompletion(work->conn_id, std::move(w->reply_batch), false, false);
        w->reply_batch.clear();
      }
      if (q) {
        // Lines pipelined after a `quit` are dropped, as they always were.
        quit = true;
        break;
      }
    }
    PushCompletion(work->conn_id, std::move(w->reply_batch), true, quit);
    w->reply_batch.clear();
  }

  void WorkerLoop(RequestServer::WorkerState* w) {
    w->workspace.Reserve(opts().serve.m, opts().serve.block_items);
    ConnWork* work = nullptr;
    for (;;) {
      if (!work_queue.TryPop(&work)) {
        // Drop stale model leases BEFORE parking: an idle worker must not
        // pin a reloaded-away generation's mapping while it waits.
        w->leases.clear();
        if (!work_queue.Pop(&work)) break;
      }
      server->ConsumePendingReload();
      ServeBatch(w, work);
      delete work;
    }
  }

  // ---- IO-thread side ----------------------------------------------

  static Clock::time_point Now() { return Clock::now(); }

  void StopListening() {
    if (!listening) return;
    listening = false;
    ::epoll_ctl(ep, EPOLL_CTL_DEL, listener, nullptr);
    ::close(listener);
    listener = -1;
  }

  size_t Backlog(const EpollConn* c) const {
    return c->outbound.size() - c->out_off;
  }

  bool WantRead(const EpollConn* c) const {
    if (c->read_closed || c->dead) return false;
    // Backpressure, not memory: stop reading while this connection
    // already holds a full window of parsed-but-undispatched lines or a
    // half-full outbound buffer. Level-triggered epoll re-reports
    // readiness the moment EPOLLIN is re-armed.
    if (c->ready_bytes >= opts().max_request_bytes) return false;
    if (opts().max_outbound_bytes > 0 &&
        Backlog(c) >= opts().max_outbound_bytes / 2) {
      return false;
    }
    return true;
  }

  void Rearm(EpollConn* c) {
    if (c->dead) return;
    uint32_t want = 0;
    if (WantRead(c)) want |= EPOLLIN;
    if (Backlog(c) > 0) want |= EPOLLOUT;
    if (want == c->armed) return;
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = want;
    ev.data.u64 = c->id;
    ::epoll_ctl(ep, EPOLL_CTL_MOD, c->fd, &ev);
    c->armed = want;
  }

  // Closes the fd and marks the connection dead. The entry itself is
  // erased later — by the end-of-iteration reap pass, or (with a batch
  // still in flight) when the worker's final completion lands — so a
  // pointer held anywhere in the current iteration never dangles.
  void CloseConn(EpollConn* c) {
    if (c->dead) return;
    if (c->fd >= 0) {
      ::epoll_ctl(ep, EPOLL_CTL_DEL, c->fd, nullptr);
      ::close(c->fd);
      c->fd = -1;
      server->open_conns_.fetch_sub(1, std::memory_order_relaxed);
    }
    c->dead = true;
    c->inbound.clear();
    c->ready.clear();
    c->outbound.clear();
    c->out_off = 0;
    dead_ids.push_back(c->id);
  }

  // Erases the connections closed this iteration (except those with a
  // batch still in flight, which ApplyCompletions erases on the final
  // completion). Must be the last thing an iteration does.
  void ReapDead() {
    for (const uint64_t id : dead_ids) {
      auto it = conns.find(id);
      if (it != conns.end() && it->second->dead && !it->second->inflight) {
        conns.erase(it);
      }
    }
    dead_ids.clear();
  }

  // Flushes as much outbound as the socket takes right now; arms EPOLLOUT
  // for the rest. Returns false if the connection was closed.
  bool FlushConn(EpollConn* c) {
    if (c->dead) return false;
    // Injected flush failure ("daemon.flush"): the write path dies
    // mid-batched-stream — unlike daemon.send (which drops a batch before
    // any byte goes out), this can tear a pipelined reply stream at a
    // flush boundary. The kill@C grammar turns it into a SIGKILL window
    // inside the write path.
    if (Backlog(c) > 0 && fault::Maybe("daemon.flush")) {
      CloseConn(c);
      return false;
    }
    while (c->out_off < c->outbound.size()) {
      const ssize_t n =
          ::send(c->fd, c->outbound.data() + c->out_off,
                 c->outbound.size() - c->out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        CloseConn(c);
        return false;
      }
      c->out_off += static_cast<size_t>(n);
      c->last_progress = Now();
    }
    if (c->out_off >= c->outbound.size()) {
      c->outbound.clear();
      c->out_off = 0;
      if ((c->quit || c->read_closed) && !c->inflight && c->ready.empty() &&
          c->pending_fail_code == 0) {
        CloseConn(c);
        return false;
      }
    } else {
      // Slow-consumer buffer cap: what the socket would not take stays
      // buffered, and a peer that lets it grow past the cap is dropped.
      // Checked AFTER flushing so a transiently large chunk to a
      // fast-draining peer never trips it.
      if (opts().max_outbound_bytes > 0 &&
          Backlog(c) > opts().max_outbound_bytes) {
        server->slow_closed_.fetch_add(1, std::memory_order_relaxed);
        CloseConn(c);
        return false;
      }
      if (c->out_off > 0 && c->out_off * 2 >= c->outbound.size()) {
        // Compact once the consumed prefix dominates; amortized O(1).
        c->outbound.erase(0, c->out_off);
        c->out_off = 0;
      }
    }
    Rearm(c);
    return true;
  }

  // Queues reply bytes on the connection and tracks the buffer high-water
  // mark; the caller flushes (which enforces the slow-consumer cap).
  void QueueReply(EpollConn* c, const std::string& bytes) {
    if (bytes.empty()) return;
    if (Backlog(c) == 0) c->last_progress = Now();
    c->outbound += bytes;
    const uint64_t backlog = Backlog(c);
    if (backlog > server->peak_outbound_.load(std::memory_order_relaxed)) {
      // Single writer (the IO thread); plain store is enough.
      server->peak_outbound_.store(backlog, std::memory_order_relaxed);
    }
  }

  // Emits a coded error reply (408/413) and closes once it drains. The
  // reply is deferred behind any batch still in flight so the peer sees
  // its earlier answers first.
  void Fail(EpollConn* c, const std::string& message, uint32_t code) {
    c->read_closed = true;
    c->inbound.clear();
    c->scan_from = 0;
    c->pending_fail_code = code;
    c->pending_fail_msg = message;
    TryFinish(c);
  }

  // Settles a connection that has nothing dispatched and nothing ready:
  // emits a deferred failure reply, or closes it if it is done. Returns
  // false if the connection was closed.
  bool TryFinish(EpollConn* c) {
    if (c->dead) return false;
    if (c->inflight || !c->ready.empty()) {
      Rearm(c);
      return true;
    }
    if (c->pending_fail_code != 0) {
      // The errors counter behind CodedErrorReply is atomic, so the
      // inline worker slot is safe to use from the IO thread.
      const std::string reply =
          server->CodedErrorReply(server->InlineWorker(), c->pending_fail_msg,
                                  c->pending_fail_code) +
          "\n";
      c->pending_fail_code = 0;
      c->pending_fail_msg.clear();
      c->quit = true;
      if (fault::Maybe("daemon.send")) {
        CloseConn(c);
        return false;
      }
      QueueReply(c, reply);
      return FlushConn(c);
    }
    if ((c->quit || c->read_closed) && Backlog(c) == 0) {
      CloseConn(c);
      return false;
    }
    Rearm(c);
    return true;
  }

  // Moves the connection's ready lines into one ConnWork and hands it to
  // the pool. A full queue is backpressure: the lines stay put and the
  // stalled flag schedules a retry after the next completion batch.
  void Dispatch(EpollConn* c) {
    if (c->dead || c->inflight || c->ready.empty()) {
      TryFinish(c);
      return;
    }
    auto work = std::make_unique<ConnWork>();
    work->conn_id = c->id;
    work->lines = std::move(c->ready);
    c->ready.clear();
    if (!work_queue.TryPush(work.get())) {
      c->ready = std::move(work->lines);
      dispatch_stalled = true;
      Rearm(c);
      return;
    }
    work.release();  // the worker deletes it
    c->inflight = true;
    c->ready_bytes = 0;
    Rearm(c);
  }

  // Scans newly appended inbound bytes for complete lines. May set a
  // deferred 413 when the newline-free tail exceeds the request bound.
  void ExtractLines(EpollConn* c) {
    size_t start = 0;
    for (;;) {
      const size_t nl =
          c->inbound.find('\n', std::max(start, c->scan_from));
      if (nl == std::string::npos) break;
      std::string line = c->inbound.substr(start, nl - start);
      start = nl + 1;
      c->scan_from = start;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      // Empty lines are skipped without advancing the idle clock — bare
      // newlines are as free for a slow-loris peer as bare bytes.
      if (line.empty()) continue;
      c->ready_bytes += line.size();
      c->ready.push_back(std::move(line));
      c->last_request = Now();
    }
    c->inbound.erase(0, start);
    c->scan_from = c->inbound.size();
    if (c->inbound.size() >= opts().max_request_bytes) {
      Fail(c,
           "request line exceeds " + std::to_string(opts().max_request_bytes) +
               " bytes",
           413);
    }
  }

  void ReadConn(EpollConn* c) {
    char chunk[16384];
    while (WantRead(c)) {
      const ssize_t n = ::read(c->fd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        CloseConn(c);
        return;
      }
      if (n == 0) {
        // Peer EOF: answer the complete lines already parsed, drop the
        // partial tail, close after the replies flush.
        c->read_closed = true;
        c->inbound.clear();
        c->scan_from = 0;
        break;
      }
      c->inbound.append(chunk, static_cast<size_t>(n));
      ExtractLines(c);
      if (c->dead) return;
    }
    Dispatch(c);
  }

  // 503-style shed reply on a just-accepted fd that never becomes a
  // connection: admission cap or fd exhaustion. Best-effort single write
  // (the socket buffer of a fresh connection always takes it), then
  // close.
  void Shed(int fd, const std::string& message) {
    server->shed_.fetch_add(1, std::memory_order_relaxed);
    JsonWriter w;
    w.BeginObject();
    w.Key("ok");
    w.Bool(false);
    w.Key("error");
    w.String(message);
    w.Key("code");
    w.UInt(503);
    w.Key("retry_after_ms");
    w.UInt(opts().retry_after_ms);
    w.EndObject();
    const std::string reply = w.str() + "\n";
    if (!fault::Maybe("daemon.send")) {
      (void)net::SendAll(fd, reply.data(), reply.size());
    }
    ::close(fd);
  }

  void CountAccept() {
    ++accepted;
    if (max_accepts > 0 && accepted >= max_accepts) StopListening();
  }

  void AdmitConn(int fd) {
    const int one = 1;
    // Replies go out as batched writes, so Nagle has little to coalesce —
    // disable it so a batch's final partial segment is never held hostage
    // to the peer's delayed ACK.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<EpollConn>();
    conn->id = next_id++;
    conn->fd = fd;
    conn->last_request = conn->last_progress = Now();
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      return;
    }
    server->open_conns_.fetch_add(1, std::memory_order_relaxed);
    conns.emplace(conn->id, std::move(conn));
  }

  void AcceptBurst() {
    while (listening) {
      const int fd = ::accept4(listener, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EMFILE || errno == ENFILE) {
          server->accept_emfile_.fetch_add(1, std::memory_order_relaxed);
          // Reserve-fd parachute: free one fd, accept the victim, tell it
          // to come back later, restock the reserve. Without this the
          // victim sits in the backlog and the listener spins hot on
          // EMFILE forever.
          if (reserve_fd >= 0) {
            ::close(reserve_fd);
            reserve_fd = -1;
          }
          const int victim =
              ::accept4(listener, nullptr, nullptr, SOCK_NONBLOCK);
          if (victim >= 0) {
            CountAccept();
            Shed(victim, "server out of file descriptors, retry later");
          }
          reserve_fd = ::open("/dev/null", O_RDONLY);
          if (victim < 0) return;
          continue;
        }
        status =
            Status::IOError(std::string("accept: ") + std::strerror(errno));
        StopListening();
        return;
      }
      CountAccept();
      // Injected accept failure ("daemon.accept"): the connection is
      // dropped on the floor as if the kernel had refused it — the client
      // sees a reset, never a half-served session. It still counts
      // against max_accepts so fault runs stay bounded.
      if (fault::Maybe("daemon.accept")) {
        ::close(fd);
        continue;
      }
      if (opts().max_connections > 0 &&
          conns.size() >= opts().max_connections) {
        server->capped_.fetch_add(1, std::memory_order_relaxed);
        Shed(fd, "server at max connections, retry later");
        continue;
      }
      AdmitConn(fd);
    }
  }

  void ApplyCompletions() {
    std::deque<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(completion_mu);
      batch.swap(completions);
    }
    for (Completion& comp : batch) {
      auto it = conns.find(comp.conn_id);
      if (it == conns.end()) continue;
      EpollConn* c = it->second.get();
      if (comp.final_piece) c->inflight = false;
      if (c->dead) {
        // The fd died while this batch was in flight; now the entry can
        // be forgotten too.
        if (!c->inflight) conns.erase(it);
        continue;
      }
      if (comp.quit) c->quit = true;
      if (!comp.replies.empty()) {
        // Injected send failure ("daemon.send"): the whole reply chunk is
        // dropped and the connection closed — an abrupt peer-visible
        // failure, but never a torn reply (the fault fires before any
        // byte of the chunk reaches the outbound buffer).
        if (fault::Maybe("daemon.send")) {
          CloseConn(c);
          continue;
        }
        QueueReply(c, comp.replies);
      }
      if (!FlushConn(c)) continue;
      if (comp.final_piece) {
        c->last_request = Now();
        // The next pipelined batch (lines that arrived while this one was
        // in flight) can go out immediately.
        Dispatch(c);
      }
    }
    if (dispatch_stalled) {
      dispatch_stalled = false;
      for (auto& entry : conns) {
        EpollConn* c = entry.second.get();
        if (!c->dead && !c->inflight && !c->ready.empty()) Dispatch(c);
        if (dispatch_stalled) break;  // queue is full again; wait
      }
    }
  }

  void SweepDeadlines() {
    if (opts().io_timeout_ms == 0) return;
    const auto now = Now();
    const auto tick = std::chrono::milliseconds(opts().io_timeout_ms);
    if (now - last_sweep < tick) return;
    last_sweep = now;
    // Collect first: Fail/CloseConn mutate the map.
    std::vector<EpollConn*> stalled;
    std::vector<EpollConn*> idle;
    for (auto& entry : conns) {
      EpollConn* c = entry.second.get();
      if (c->dead) continue;
      if (Backlog(c) > 0 && now - c->last_progress >= tick) {
        // Slow consumer: owed bytes, no write progress for a full
        // deadline — the peer stopped draining its socket.
        stalled.push_back(c);
      } else if (opts().idle_timeout_ms > 0 && !c->inflight &&
                 c->ready.empty() && Backlog(c) == 0 && !c->read_closed &&
                 now - c->last_request >=
                     std::chrono::milliseconds(opts().idle_timeout_ms)) {
        idle.push_back(c);
      }
    }
    for (EpollConn* c : stalled) {
      server->slow_closed_.fetch_add(1, std::memory_order_relaxed);
      CloseConn(c);
    }
    for (EpollConn* c : idle) {
      server->timed_out_.fetch_add(1, std::memory_order_relaxed);
      Fail(c,
           "idle timeout: no complete request in " +
               std::to_string(opts().idle_timeout_ms) + "ms",
           408);
    }
    if (draining && now - drain_start >=
                        std::chrono::milliseconds(kDrainForceCloseMs)) {
      std::vector<EpollConn*> rest;
      rest.reserve(conns.size());
      for (auto& entry : conns) {
        if (!entry.second->dead) rest.push_back(entry.second.get());
      }
      for (EpollConn* c : rest) CloseConn(c);
    }
  }

  void BeginDrain() {
    draining = true;
    drain_start = Now();
    StopListening();
    // Drain walks every live connection: complete requests already read
    // are answered and flushed, partial tails are dropped, and each
    // connection closes once its replies are out.
    std::vector<EpollConn*> live;
    live.reserve(conns.size());
    for (auto& entry : conns) {
      if (!entry.second->dead) live.push_back(entry.second.get());
    }
    for (EpollConn* c : live) {
      c->read_closed = true;
      c->inbound.clear();
      c->scan_from = 0;
      Dispatch(c);
    }
  }

  Status Run() {
    ep = ::epoll_create1(0);
    if (ep < 0) {
      return Status::IOError(std::string("epoll_create1: ") +
                             std::strerror(errno));
    }
    wake_fd = ::eventfd(0, EFD_NONBLOCK);
    if (wake_fd < 0) {
      const Status st =
          Status::IOError(std::string("eventfd: ") + std::strerror(errno));
      ::close(ep);
      ep = -1;
      return st;
    }
    reserve_fd = ::open("/dev/null", O_RDONLY);
    net::SetNonBlocking(listener);
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerTag;
    ::epoll_ctl(ep, EPOLL_CTL_ADD, listener, &ev);
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    ::epoll_ctl(ep, EPOLL_CTL_ADD, wake_fd, &ev);

    std::vector<std::thread> pool;
    pool.reserve(server->num_tcp_workers_);
    for (size_t i = 0; i < server->num_tcp_workers_; ++i) {
      RequestServer::WorkerState* w = server->workers_[i].get();
      pool.emplace_back([this, w] { WorkerLoop(w); });
    }

    struct epoll_event events[64];
    for (;;) {
      // Injected IO-loop stall ("daemon.epoll"): the whole readiness loop
      // freezes — reads, flushes, accepts, and deadline sweeps all stop —
      // while workers keep computing. Connections must survive it with
      // nothing but delay. The kill@C grammar turns it into a SIGKILL
      // window inside the IO loop.
      if (fault::Maybe("daemon.epoll")) {
        std::this_thread::sleep_for(std::chrono::milliseconds(kEpollStallMs));
      }
      server->ConsumePendingReload();
      if (!draining && RequestServer::ShutdownRequested()) BeginDrain();
      if (!listening && conns.empty()) break;
      int timeout_ms = -1;
      if (opts().io_timeout_ms > 0) {
        timeout_ms = static_cast<int>(opts().io_timeout_ms);
      }
      if (draining) {
        timeout_ms = timeout_ms < 0
                         ? 100
                         : std::min(timeout_ms, 100);
      }
      const int n = ::epoll_wait(ep, events, 64, timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;  // signal — re-run the latch checks
        status = Status::IOError(std::string("epoll_wait: ") +
                                 std::strerror(errno));
        break;
      }
      for (int i = 0; i < n; ++i) {
        const uint64_t tag = events[i].data.u64;
        const uint32_t evs = events[i].events;
        if (tag == kListenerTag) {
          if (listening) AcceptBurst();
          continue;
        }
        if (tag == kWakeTag) {
          uint64_t count = 0;
          (void)!::read(wake_fd, &count, sizeof(count));
          continue;
        }
        auto it = conns.find(tag);
        // A connection reaped in an earlier iteration: stale id.
        if (it == conns.end()) continue;
        EpollConn* c = it->second.get();
        if (c->dead) continue;
        if ((evs & EPOLLERR) != 0) {
          CloseConn(c);
          continue;
        }
        if ((evs & (EPOLLIN | EPOLLHUP)) != 0) {
          // EPOLLHUP without readable bytes reads as EOF, which ReadConn
          // turns into answer-then-close.
          ReadConn(c);
          if (c->dead) continue;
        }
        if ((evs & EPOLLOUT) != 0) FlushConn(c);
      }
      ApplyCompletions();
      SweepDeadlines();
      ReapDead();
    }

    // Teardown order matters: close the queue, join the pool (workers
    // write wake_fd until they exit), only then release the fds.
    work_queue.Close();
    {
      ConnWork* leftover = nullptr;
      while (work_queue.TryPop(&leftover)) delete leftover;
    }
    for (std::thread& t : pool) t.join();
    for (auto& entry : conns) {
      EpollConn* c = entry.second.get();
      if (c->fd >= 0) {
        ::close(c->fd);
        c->fd = -1;
        server->open_conns_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    conns.clear();
    if (reserve_fd >= 0) ::close(reserve_fd);
    ::close(wake_fd);
    ::close(ep);
    if (listener >= 0) ::close(listener);
    return status;
  }
};

Status RequestServer::RunTcpLoop(uint16_t port, uint64_t max_accepts) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // serve localhost only
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status st =
        Status::IOError(std::string("bind 127.0.0.1:") + std::to_string(port) +
                        ": " + std::strerror(errno));
    ::close(listener);
    return st;
  }
  if (::listen(listener, SOMAXCONN) != 0) {
    const Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listener);
    return st;
  }
  {
    // Publish the (possibly kernel-assigned) port only after listen()
    // succeeded: a client that observes it can connect right away.
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    uint16_t actual = port;
    if (::getsockname(listener, reinterpret_cast<struct sockaddr*>(&bound),
                      &len) == 0) {
      actual = ntohs(bound.sin_port);
    }
    bound_port_.store(actual, std::memory_order_release);
  }

  RequestServerEpollCore core(this, listener, max_accepts);
  const Status status = core.Run();
  bound_port_.store(0, std::memory_order_release);
  // Drain exit: consume the latch (so a test can serve again in this
  // process) and flush one final stats line — the last thing an operator
  // sees from a SIGTERMed daemon is what it did with its life.
  if (g_pending_shutdown.exchange(false, std::memory_order_relaxed)) {
    std::fprintf(stderr, "drained: %s\n", HandleStats().c_str());
  }
  return status;
}

}  // namespace ocular
