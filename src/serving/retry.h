#ifndef OCULAR_SERVING_RETRY_H_
#define OCULAR_SERVING_RETRY_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/json.h"

namespace ocular {
namespace retry {

/// \file
/// \brief The one retry/backoff discipline of the serving stack, shared
/// by the load generator (serving/loadgen.cc) and the fleet front tier
/// (serving/fleet.cc): capped exponential backoff with deterministic
/// per-caller jitter, seeded by the server's `retry_after_ms` hint. One
/// definition so a proxy and the clients behind it can never disagree
/// about how hard to hammer a shedding server — and one place to
/// sanitize the hint, which arrives over the wire from a peer that may
/// be buggy or hostile.

/// Ceiling applied to any `retry_after_ms` hint read off the wire. A
/// server has no business asking a client to stay away longer than a
/// minute, and an unclamped hint feeds a left shift below — a huge value
/// would wrap uint64 and turn "back off" into "retry immediately".
inline constexpr uint64_t kMaxRetryAfterHintMs = 60'000;

/// Default cap on the exponential component of one backoff delay.
inline constexpr uint64_t kDefaultBackoffCapMs = 2'000;

/// \brief `hint` clamped to [1, kMaxRetryAfterHintMs] — the only form a
/// wire-read retry_after_ms may take inside the retry machinery.
inline uint64_t ClampRetryAfterMs(uint64_t hint) {
  return std::clamp<uint64_t>(hint, 1, kMaxRetryAfterHintMs);
}

/// \brief Backoff before retry attempt `attempt` (0-based): the server's
/// clamped retry_after_ms hint doubled per attempt, capped at `cap_ms`,
/// plus a deterministic per-(salt, attempt) jitter of up to half the
/// (cap-bounded) base so a shed fleet does not stampede back in
/// lockstep. `salt` identifies the caller (client index, replica index);
/// the same (salt, attempt) always yields the same delay, so tests and
/// replayed traces stay reproducible. The worst-case return is
/// 1.5 * cap_ms.
inline uint64_t BackoffMs(uint64_t retry_after_ms, uint32_t salt,
                          uint32_t attempt,
                          uint64_t cap_ms = kDefaultBackoffCapMs) {
  const uint64_t base = ClampRetryAfterMs(retry_after_ms);
  const uint64_t shift = attempt < 16 ? attempt : 16;
  // base <= 60'000 < 2^16, so base << 16 tops out below 2^32 — no wrap.
  const uint64_t delay = std::min<uint64_t>(cap_ms, base << shift);
  uint64_t h = (static_cast<uint64_t>(salt) + 1) * 0x9e3779b97f4a7c15ULL +
               (static_cast<uint64_t>(attempt) + 1) * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  const uint64_t jitter_span = std::min<uint64_t>(base, cap_ms) / 2 + 1;
  return delay + h % jitter_span;
}

/// \brief True for a 503 shed reply line; extracts its retry_after_ms
/// hint, already clamped through ClampRetryAfterMs (left unchanged when
/// the reply carries none). The substring pre-check keeps the common
/// (non-shed) path free of a JSON parse.
inline bool ParseShedReply(const std::string& line,
                           uint64_t* retry_after_ms) {
  if (line.find("\"code\":503") == std::string::npos) return false;
  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok() || !parsed->is_object()) return false;
  const JsonValue* code = parsed->Find("code");
  if (code == nullptr || !code->is_number() || code->number() != 503.0) {
    return false;
  }
  if (const JsonValue* hint = parsed->Find("retry_after_ms");
      hint != nullptr && hint->is_number() && hint->number() > 0) {
    // A hostile hint can also be absurdly large as a double; bound it
    // before the uint64 conversion can overflow.
    const double capped = std::min(
        hint->number(), static_cast<double>(kMaxRetryAfterHintMs));
    *retry_after_ms = ClampRetryAfterMs(static_cast<uint64_t>(capped));
  }
  return true;
}

}  // namespace retry
}  // namespace ocular

#endif  // OCULAR_SERVING_RETRY_H_
