#include "parallel/partition.h"

#include <algorithm>

namespace ocular {

namespace {
/// Fixed per-row cost in "nnz units": covers the column-sum reads, the l2
/// term, and the projection arithmetic a block update performs even when
/// the row has no positives.
constexpr uint64_t kRowOverhead = 4;
/// Floor on the work per range, so near-empty matrices don't shatter into
/// per-row tasks whose dispatch overhead dwarfs the work.
constexpr uint64_t kMinWorkPerRange = 256;
}  // namespace

std::vector<std::pair<size_t, size_t>> BalancedRowRanges(
    std::span<const uint64_t> row_ptr, size_t num_threads,
    size_t chunks_per_thread) {
  std::vector<std::pair<size_t, size_t>> ranges;
  if (row_ptr.size() <= 1) return ranges;
  const size_t num_rows = row_ptr.size() - 1;
  const uint64_t total_nnz = row_ptr[num_rows] - row_ptr[0];
  const uint64_t total_work = total_nnz + kRowOverhead * num_rows;

  const size_t target_chunks =
      std::max<size_t>(1, num_threads * std::max<size_t>(1, chunks_per_thread));
  const uint64_t target_work = std::max(
      kMinWorkPerRange, (total_work + target_chunks - 1) / target_chunks);

  size_t range_begin = 0;
  uint64_t acc = 0;
  for (size_t r = 0; r < num_rows; ++r) {
    acc += (row_ptr[r + 1] - row_ptr[r]) + kRowOverhead;
    if (acc >= target_work) {
      ranges.emplace_back(range_begin, r + 1);
      range_begin = r + 1;
      acc = 0;
    }
  }
  if (range_begin < num_rows) ranges.emplace_back(range_begin, num_rows);
  return ranges;
}

}  // namespace ocular
