#ifndef OCULAR_PARALLEL_BOUNDED_QUEUE_H_
#define OCULAR_PARALLEL_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace ocular {

/// Bounded multi-producer multi-consumer FIFO handoff queue.
///
/// This is the backpressure primitive of the concurrent serving daemon:
/// the epoll IO thread TryPush()es parsed request batches and, when the
/// queue is full, holds them on the connection and retries after the
/// next completion (backpressure, not shedding — admission control
/// sheds, the dispatch queue never drops); worker threads block in
/// Pop() until a batch (or shutdown) arrives. Close() wakes every
/// waiter; Pop() then drains the remaining items before reporting
/// shutdown, so nothing dispatched is silently dropped.
///
/// Plain mutex + condition variables — the queue hands off at connection
/// granularity (thousands per second at most), not per request, so
/// lock-free cleverness would buy nothing and cost TSan/ASan clarity.
template <typename T>
class BoundedQueue {
 public:
  /// A queue that holds at most `capacity` items (at least 1).
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues without blocking. Returns false when the queue is full or
  /// closed — the caller sheds the item.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_pop_.notify_one();
    return true;
  }

  /// Dequeues the oldest item without blocking. Returns false when the
  /// queue is empty (open or closed) — the epoll core's workers use this
  /// to drain opportunistically before parking in Pop().
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Dequeues the oldest item, blocking while the queue is open and
  /// empty. Returns false only when the queue is closed AND drained —
  /// the consumer's signal to exit.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_pop_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Closes the queue: TryPush() starts failing, blocked Pop()s wake.
  /// Items already queued remain poppable. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_pop_.notify_all();
  }

  /// Items currently queued (racy by nature; for stats and tests).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// The capacity the queue was built with.
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_pop_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ocular

#endif  // OCULAR_PARALLEL_BOUNDED_QUEUE_H_
