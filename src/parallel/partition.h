#ifndef OCULAR_PARALLEL_PARTITION_H_
#define OCULAR_PARALLEL_PARTITION_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace ocular {

/// Splits the rows of a CSR pattern into contiguous half-open ranges of
/// roughly equal WORK, where the work of a row is its nnz plus a small
/// constant (the O(K) per-row bookkeeping every block update pays even for
/// empty rows).
///
/// This replaces uniform row chunking (a fixed `grain`) in the parallel
/// trainers: under skewed row-degree distributions — the normal case for
/// interaction data — equal-row chunks concentrate most of the O(nnz·K)
/// sweep cost in the few chunks holding the heavy rows and serialize the
/// phase on them. Equal-nnz ranges keep every worker busy.
///
/// `row_ptr` is the cumulative CSR offset array (size num_rows + 1), so the
/// whole computation is a single O(num_rows) walk with no per-row degree
/// recount. The target work per range is derived from
///   total_work / (num_threads * chunks_per_thread)
/// and clamped below so tiny inputs produce one range instead of
/// per-row tasks. Every range holds at least one row; the ranges cover
/// [0, num_rows) exactly, in order.
std::vector<std::pair<size_t, size_t>> BalancedRowRanges(
    std::span<const uint64_t> row_ptr, size_t num_threads,
    size_t chunks_per_thread = 8);

}  // namespace ocular

#endif  // OCULAR_PARALLEL_PARTITION_H_
