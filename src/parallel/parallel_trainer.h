#ifndef OCULAR_PARALLEL_PARALLEL_TRAINER_H_
#define OCULAR_PARALLEL_PARALLEL_TRAINER_H_

#include <cstdint>

#include "common/thread_pool.h"
#include "core/ocular_trainer.h"

namespace ocular {

/// Parallel OCuLaR trainer — the library's stand-in for the paper's GPU
/// implementation (Section VI).
///
/// Within one block phase all f_i updates are mutually independent (they
/// read only the fixed f_u side and the precomputed Σ f_u), so the factor
/// rows are partitioned across worker threads; likewise for the user
/// phase. The numerics are identical to the serial OcularTrainer — the
/// same internal::ProjectedGradientStep runs on every row — so
/// parallel-vs-serial equality is an exact invariant (verified in tests),
/// not just a statistical one.
///
/// The finer per-positive-example decomposition the CUDA kernels use is
/// implemented in parallel/gradient_kernel.h and exercised by the Fig. 8
/// benchmark.
class ParallelOcularTrainer {
 public:
  /// `num_threads` = 0 means hardware concurrency.
  ParallelOcularTrainer(OcularConfig config, size_t num_threads = 0)
      : config_(std::move(config)), pool_(num_threads) {}

  const OcularConfig& config() const { return config_; }
  size_t num_threads() const { return pool_.num_threads(); }

  /// Trains from scratch (same initialization as OcularTrainer with the
  /// same seed, so results are comparable run-to-run).
  Result<OcularFitResult> Fit(const CsrMatrix& interactions);

  /// Warm-start variant.
  Result<OcularFitResult> FitFrom(const CsrMatrix& interactions,
                                  OcularModel initial);

 private:
  OcularConfig config_;
  ThreadPool pool_;
};

}  // namespace ocular

#endif  // OCULAR_PARALLEL_PARALLEL_TRAINER_H_
