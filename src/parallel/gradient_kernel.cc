#include "parallel/gradient_kernel.h"

#include <atomic>
#include <cmath>

#include "common/logging.h"

namespace ocular {

namespace {
constexpr double kAffinityFloor = 1e-12;

/// α(x) = 1 / (1 − e^{−x}) with a floor on x.
double Alpha(double dot) {
  return 1.0 / std::max(-std::expm1(-std::max(dot, kAffinityFloor)),
                        kAffinityFloor);
}

void InitGradients(const DenseMatrix& user_factors,
                   const DenseMatrix& item_factors, double lambda,
                   DenseMatrix* gradients) {
  const uint32_t k = user_factors.cols();
  const std::vector<double> c = user_factors.ColumnSums();
  *gradients = DenseMatrix(item_factors.rows(), k);
  for (uint32_t i = 0; i < item_factors.rows(); ++i) {
    auto g = gradients->Row(i);
    auto fi = item_factors.Row(i);
    for (uint32_t d = 0; d < k; ++d) g[d] = c[d] + 2.0 * lambda * fi[d];
  }
}

}  // namespace

void ComputeItemGradientsSerial(const CsrMatrix& transposed,
                                const DenseMatrix& user_factors,
                                const DenseMatrix& item_factors,
                                double lambda, DenseMatrix* gradients) {
  OCULAR_CHECK_EQ(transposed.num_rows(), item_factors.rows());
  InitGradients(user_factors, item_factors, lambda, gradients);
  const uint32_t k = user_factors.cols();
  for (uint32_t i = 0; i < transposed.num_rows(); ++i) {
    auto g = gradients->Row(i);
    auto fi = item_factors.Row(i);
    for (uint32_t u : transposed.Row(i)) {
      auto fu = user_factors.Row(u);
      const double a = Alpha(vec::Dot(fu, fi));
      for (uint32_t d = 0; d < k; ++d) g[d] -= a * fu[d];
    }
  }
}

void ComputeItemGradientsKernel(const CsrMatrix& transposed,
                                const DenseMatrix& user_factors,
                                const DenseMatrix& item_factors,
                                double lambda, ThreadPool* pool,
                                DenseMatrix* gradients) {
  OCULAR_CHECK_EQ(transposed.num_rows(), item_factors.rows());
  InitGradients(user_factors, item_factors, lambda, gradients);
  const uint32_t k = user_factors.cols();

  // Flatten the positive examples: task t handles pair (item, user).
  // (On the GPU this is the grid of thread blocks, one per positive.)
  const auto& row_ptr = transposed.row_ptr();
  const auto& users = transposed.col_idx();
  std::vector<uint32_t> item_of(users.size());
  for (uint32_t i = 0; i < transposed.num_rows(); ++i) {
    for (uint64_t t = row_ptr[i]; t < row_ptr[i + 1]; ++t) item_of[t] = i;
  }

  // Atomic view of the gradient buffer. std::atomic_ref keeps the storage
  // plain double, matching the GPU's atomicAdd into global memory.
  double* grad_data = gradients->data();
  pool->ParallelForChunked(
      0, users.size(),
      [&](size_t lo, size_t hi) {
        for (size_t t = lo; t < hi; ++t) {
          const uint32_t i = item_of[t];
          const uint32_t u = users[t];
          auto fu = user_factors.Row(u);
          auto fi = item_factors.Row(i);
          const double a = Alpha(vec::Dot(fu, fi));
          double* g = grad_data + static_cast<size_t>(i) * k;
          for (uint32_t d = 0; d < k; ++d) {
            std::atomic_ref<double> cell(g[d]);
            cell.fetch_add(-a * fu[d], std::memory_order_relaxed);
          }
        }
      },
      /*grain=*/256);
}

}  // namespace ocular
