#ifndef OCULAR_PARALLEL_KERNEL_TRAINER_H_
#define OCULAR_PARALLEL_KERNEL_TRAINER_H_

#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/ocular_trainer.h"

namespace ocular {

/// Kernel-structured OCuLaR trainer — the closest CPU analogue of the
/// paper's GPU implementation (Section VI-A).
///
/// Where ParallelOcularTrainer partitions factor ROWS across workers (each
/// row recomputing its own gradient), this trainer mirrors the CUDA
/// execution plan kernel by kernel:
///
///   1. gradient-init kernel:  grad_i = C + 2λ f_i for all items
///   2. per-positive kernel:   one task per positive rating computes
///                             <f_u, f_i> and atomically accumulates
///                             −α(<f_u,f_i>)·f_u into grad_i (eq. 11)
///   3. update kernel:         per-row Armijo projection-arc step using
///                             the precomputed gradient
///
/// and symmetrically for the user phase. Because the atomic accumulation
/// reorders floating-point sums, results match the serial trainer only to
/// ~1e-9 relative (verified in tests), unlike ParallelOcularTrainer's
/// bit-exact equality.
///
/// Restrictions: absolute variant only (the per-positive kernel carries no
/// per-neighbor weights) and no bias extension. Both return
/// InvalidArgument.
class KernelOcularTrainer {
 public:
  KernelOcularTrainer(OcularConfig config, size_t num_threads = 0)
      : config_(std::move(config)), pool_(num_threads) {}

  const OcularConfig& config() const { return config_; }
  size_t num_threads() const { return pool_.num_threads(); }

  Result<OcularFitResult> Fit(const CsrMatrix& interactions);
  Result<OcularFitResult> FitFrom(const CsrMatrix& interactions,
                                  OcularModel initial);

 private:
  /// One phase: computes gradients for all rows of `target` by the
  /// per-positive kernel, then applies the Armijo update row-wise over the
  /// nnz-balanced `ranges`, one workspace per worker. `step_hints` is the
  /// per-row adaptive line-search state for this side. When `block_q` is
  /// non-null (user phase with objective tracking), the final block
  /// objective of each row is recorded there for the fused per-sweep Q.
  void Phase(const CsrMatrix& pattern, const DenseMatrix& fixed,
             DenseMatrix* target,
             const std::vector<std::pair<size_t, size_t>>& ranges,
             std::vector<internal::BlockWorkspace>* workspaces,
             double* step_hints, double* block_q);

  OcularConfig config_;
  ThreadPool pool_;
};

}  // namespace ocular

#endif  // OCULAR_PARALLEL_KERNEL_TRAINER_H_
