#include "parallel/parallel_trainer.h"

#include <cmath>
#include <numeric>

#include "common/timer.h"
#include "parallel/partition.h"

namespace ocular {

Result<OcularFitResult> ParallelOcularTrainer::Fit(
    const CsrMatrix& interactions) {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  Rng rng(config_.seed);
  const double scale =
      config_.init_scale / std::sqrt(static_cast<double>(config_.k));
  const uint32_t dims = config_.TotalDims();
  DenseMatrix fu(interactions.num_rows(), dims);
  DenseMatrix fi(interactions.num_cols(), dims);
  fu.FillUniform(&rng, 0.0, scale);
  fi.FillUniform(&rng, 0.0, scale);
  if (config_.use_biases) {
    // Same bias layout as the serial trainer (see OcularTrainer::Fit).
    for (uint32_t u = 0; u < fu.rows(); ++u) {
      fu.At(u, config_.k) = rng.Uniform(0.0, 0.1);
      fu.At(u, config_.k + 1) = 1.0;
    }
    for (uint32_t i = 0; i < fi.rows(); ++i) {
      fi.At(i, config_.k) = 1.0;
      fi.At(i, config_.k + 1) = rng.Uniform(0.0, 0.1);
    }
  }
  return FitFrom(interactions, OcularModel(std::move(fu), std::move(fi)));
}

Result<OcularFitResult> ParallelOcularTrainer::FitFrom(
    const CsrMatrix& interactions, OcularModel initial) {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  if (interactions.nnz() == 0) {
    return Status::InvalidArgument("interaction matrix has no positives");
  }
  if (initial.num_users() != interactions.num_rows() ||
      initial.num_items() != interactions.num_cols() ||
      initial.k() != config_.TotalDims()) {
    return Status::InvalidArgument("initial model shape mismatch");
  }
  const int item_frozen = config_.use_biases ? static_cast<int>(config_.k)
                                             : -1;
  const int user_frozen =
      config_.use_biases ? static_cast<int>(config_.k) + 1 : -1;

  OcularFitResult out;
  out.model = std::move(initial);
  DenseMatrix& fu = *out.model.mutable_user_factors();
  DenseMatrix& fi = *out.model.mutable_item_factors();

  const CsrMatrix transposed = interactions.Transpose();
  OcularTrainer serial(config_);  // for UserWeights / shared config
  const std::vector<double> weights = serial.UserWeights(interactions);
  const bool relative = config_.variant == OcularVariant::kRelative;

  // R-OCuLaR item phase: pre-gather the per-positive user weights once per
  // fit (constant across sweeps); item i's weights are the contiguous span
  // aligned with transposed.col_idx().
  std::vector<double> item_phase_weights;
  if (relative) {
    const std::vector<uint32_t>& users_flat = transposed.col_idx();
    item_phase_weights.resize(users_flat.size());
    for (size_t t = 0; t < users_flat.size(); ++t) {
      item_phase_weights[t] = weights[users_flat[t]];
    }
  }

  // The sparsity pattern is constant across sweeps, so the nnz-balanced
  // row decomposition (which replaces the old fixed /*grain=*/8 chunking)
  // is computed once per fit.
  const std::vector<std::pair<size_t, size_t>> item_ranges =
      BalancedRowRanges(transposed.row_ptr(), pool_.num_threads());
  const std::vector<std::pair<size_t, size_t>> user_ranges =
      BalancedRowRanges(interactions.row_ptr(), pool_.num_threads());

  // One workspace per worker (+1 for the caller when a phase runs inline):
  // all block-update scratch lives here, so sweeps are allocation-free.
  const uint32_t max_deg =
      std::max(interactions.MaxRowDegree(), transposed.MaxRowDegree());
  std::vector<internal::BlockWorkspace> workspaces(pool_.num_threads() + 1);
  for (auto& ws : workspaces) ws.Reserve(config_.TotalDims(), max_deg);

  // Per-row adaptive line-search state (accepted backtrack exponents; see
  // ArmijoStep). Row-indexed, and every row belongs to exactly one range,
  // so workers never contend — and the values evolve identically to the
  // serial trainer's (bit-exact equivalence holds).
  std::vector<double> item_steps(interactions.num_cols(), 0.0);
  std::vector<double> user_steps(interactions.num_rows(), 0.0);

  Stopwatch watch;
  double prev_q = config_.track_objective
                      ? ObjectiveQ(out.model, interactions, config_.lambda,
                                   relative ? weights : std::vector<double>{})
                      : 0.0;

  // Per-user block objectives, summed in row order after the user phase so
  // the fused Q is bit-identical to the serial trainer's regardless of the
  // range decomposition.
  std::vector<double> block_q(
      config_.track_objective ? interactions.num_rows() : 0, 0.0);

  for (uint32_t sweep = 0; sweep < config_.max_sweeps; ++sweep) {
    // ---- Item phase (rows partitioned across workers by nnz mass). ----
    const std::vector<double> user_sums = fu.ColumnSums();
    const std::vector<uint64_t>& item_ptr = transposed.row_ptr();
    pool_.ParallelForRanges(item_ranges, [&](size_t lo, size_t hi) {
      internal::BlockWorkspace& ws = workspaces[ThreadPool::ScratchSlot(
          pool_.num_threads())];
      for (size_t i = lo; i < hi; ++i) {
        auto users = transposed.Row(static_cast<uint32_t>(i));
        std::span<const double> wspan;
        if (relative) {
          wspan = {item_phase_weights.data() + item_ptr[i], users.size()};
        }
        ws.Invalidate();
        for (uint32_t step = 0; step < config_.block_steps; ++step) {
          internal::ProjectedGradientStep(
              fi.Row(static_cast<uint32_t>(i)), users, fu, user_sums,
              config_.lambda, 1.0, wspan, config_, item_frozen, &ws,
              &item_steps[i]);
        }
      }
    });

    // ---- User phase. ----
    const std::vector<double> item_sums = fi.ColumnSums();
    pool_.ParallelForRanges(user_ranges, [&](size_t lo, size_t hi) {
      internal::BlockWorkspace& ws = workspaces[ThreadPool::ScratchSlot(
          pool_.num_threads())];
      for (size_t u = lo; u < hi; ++u) {
        const double w = relative ? weights[u] : 1.0;
        ws.Invalidate();
        internal::BlockStepResult last;
        for (uint32_t step = 0; step < config_.block_steps; ++step) {
          last = internal::ProjectedGradientStep(
              fu.Row(static_cast<uint32_t>(u)),
              interactions.Row(static_cast<uint32_t>(u)), fi, item_sums,
              config_.lambda, w, {}, config_, user_frozen, &ws,
              &user_steps[u]);
        }
        if (config_.track_objective) block_q[u] = last.objective;
      }
    });

    out.sweeps_run = sweep + 1;
    if (config_.track_objective) {
      // Fused objective (see OcularTrainer::FitFrom): the user-phase block
      // objectives plus the item-side regularizer.
      const double q = std::accumulate(block_q.begin(), block_q.end(), 0.0) +
                       config_.lambda * fi.SquaredFrobeniusNorm();
      out.trace.push_back(SweepStats{sweep, q, watch.ElapsedSeconds()});
      const double rel_drop = (prev_q - q) / std::max(std::abs(prev_q), 1e-12);
      if (rel_drop < config_.tolerance) {
        out.converged = true;
        break;
      }
      prev_q = q;
    }
  }
  return out;
}

}  // namespace ocular
