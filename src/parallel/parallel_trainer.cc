#include "parallel/parallel_trainer.h"

#include <cmath>

#include "common/timer.h"

namespace ocular {

Result<OcularFitResult> ParallelOcularTrainer::Fit(
    const CsrMatrix& interactions) {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  Rng rng(config_.seed);
  const double scale =
      config_.init_scale / std::sqrt(static_cast<double>(config_.k));
  const uint32_t dims = config_.TotalDims();
  DenseMatrix fu(interactions.num_rows(), dims);
  DenseMatrix fi(interactions.num_cols(), dims);
  fu.FillUniform(&rng, 0.0, scale);
  fi.FillUniform(&rng, 0.0, scale);
  if (config_.use_biases) {
    // Same bias layout as the serial trainer (see OcularTrainer::Fit).
    for (uint32_t u = 0; u < fu.rows(); ++u) {
      fu.At(u, config_.k) = rng.Uniform(0.0, 0.1);
      fu.At(u, config_.k + 1) = 1.0;
    }
    for (uint32_t i = 0; i < fi.rows(); ++i) {
      fi.At(i, config_.k) = 1.0;
      fi.At(i, config_.k + 1) = rng.Uniform(0.0, 0.1);
    }
  }
  return FitFrom(interactions, OcularModel(std::move(fu), std::move(fi)));
}

Result<OcularFitResult> ParallelOcularTrainer::FitFrom(
    const CsrMatrix& interactions, OcularModel initial) {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  if (interactions.nnz() == 0) {
    return Status::InvalidArgument("interaction matrix has no positives");
  }
  if (initial.num_users() != interactions.num_rows() ||
      initial.num_items() != interactions.num_cols() ||
      initial.k() != config_.TotalDims()) {
    return Status::InvalidArgument("initial model shape mismatch");
  }
  const int item_frozen = config_.use_biases ? static_cast<int>(config_.k)
                                             : -1;
  const int user_frozen =
      config_.use_biases ? static_cast<int>(config_.k) + 1 : -1;

  OcularFitResult out;
  out.model = std::move(initial);
  DenseMatrix& fu = *out.model.mutable_user_factors();
  DenseMatrix& fi = *out.model.mutable_item_factors();

  const CsrMatrix transposed = interactions.Transpose();
  OcularTrainer serial(config_);  // for UserWeights / shared config
  const std::vector<double> weights = serial.UserWeights(interactions);
  const bool relative = config_.variant == OcularVariant::kRelative;

  Stopwatch watch;
  double prev_q = config_.track_objective
                      ? ObjectiveQ(out.model, interactions, config_.lambda,
                                   relative ? weights : std::vector<double>{})
                      : 0.0;

  for (uint32_t sweep = 0; sweep < config_.max_sweeps; ++sweep) {
    // ---- Item phase (rows partitioned across workers). ----
    const std::vector<double> user_sums = fu.ColumnSums();
    pool_.ParallelForChunked(
        0, interactions.num_cols(),
        [&](size_t lo, size_t hi) {
          std::vector<double> neighbor_weights;
          for (size_t i = lo; i < hi; ++i) {
            auto users = transposed.Row(static_cast<uint32_t>(i));
            std::span<const double> wspan;
            if (relative) {
              neighbor_weights.resize(users.size());
              for (size_t n = 0; n < users.size(); ++n) {
                neighbor_weights[n] = weights[users[n]];
              }
              wspan = neighbor_weights;
            }
            internal::ProjectedGradientStep(
                fi.Row(static_cast<uint32_t>(i)), users, fu, user_sums,
                config_.lambda, 1.0, wspan, config_, item_frozen);
          }
        },
        /*grain=*/8);

    // ---- User phase. ----
    const std::vector<double> item_sums = fi.ColumnSums();
    pool_.ParallelForChunked(
        0, interactions.num_rows(),
        [&](size_t lo, size_t hi) {
          for (size_t u = lo; u < hi; ++u) {
            const double w = relative ? weights[u] : 1.0;
            internal::ProjectedGradientStep(
                fu.Row(static_cast<uint32_t>(u)),
                interactions.Row(static_cast<uint32_t>(u)), fi, item_sums,
                config_.lambda, w, {}, config_, user_frozen);
          }
        },
        /*grain=*/8);

    out.sweeps_run = sweep + 1;
    if (config_.track_objective) {
      const double q =
          ObjectiveQ(out.model, interactions, config_.lambda,
                     relative ? weights : std::vector<double>{});
      out.trace.push_back(SweepStats{sweep, q, watch.ElapsedSeconds()});
      const double rel_drop = (prev_q - q) / std::max(std::abs(prev_q), 1e-12);
      if (rel_drop < config_.tolerance) {
        out.converged = true;
        break;
      }
      prev_q = q;
    }
  }
  return out;
}

}  // namespace ocular
