#ifndef OCULAR_PARALLEL_GRADIENT_KERNEL_H_
#define OCULAR_PARALLEL_GRADIENT_KERNEL_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "sparse/csr.h"
#include "sparse/dense.h"

namespace ocular {

/// CPU re-implementation of the paper's GPU item-gradient kernel
/// (Section VI-A, eq. 11):
///
///   grad(f_i) = C + 2λ f_i − Σ_{u: r_ui=1} f_u · α(<f_u, f_i>),
///   C = Σ_u f_u,   α(x) = 1 / (1 − e^{−x}).
///
/// The decomposition mirrors the CUDA kernel: gradients are initialized to
/// C + 2λ f_i, then one *task per positive example* (the GPU's thread
/// block per positive rating) computes the inner product and atomically
/// accumulates −α·f_u into the item's gradient row. On GPU the atomics hit
/// device memory; here they are std::atomic<double> fetch_adds.
///
/// `transposed` is R^T (item-major). Output `gradients` is n_i x K.
/// Accumulation order is non-deterministic, so results match the serial
/// gradient only up to floating-point reassociation (~1e-9 relative).
void ComputeItemGradientsKernel(const CsrMatrix& transposed,
                                const DenseMatrix& user_factors,
                                const DenseMatrix& item_factors,
                                double lambda, ThreadPool* pool,
                                DenseMatrix* gradients);

/// Serial reference for the same gradient (used by tests and as the
/// "CPU implementation" side of the Fig. 8 comparison).
void ComputeItemGradientsSerial(const CsrMatrix& transposed,
                                const DenseMatrix& user_factors,
                                const DenseMatrix& item_factors,
                                double lambda, DenseMatrix* gradients);

}  // namespace ocular

#endif  // OCULAR_PARALLEL_GRADIENT_KERNEL_H_
