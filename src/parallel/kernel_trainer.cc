#include "parallel/kernel_trainer.h"

#include <cmath>

#include "common/timer.h"
#include "parallel/gradient_kernel.h"

namespace ocular {

Result<OcularFitResult> KernelOcularTrainer::Fit(
    const CsrMatrix& interactions) {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  Rng rng(config_.seed);
  const double scale =
      config_.init_scale / std::sqrt(static_cast<double>(config_.k));
  DenseMatrix fu(interactions.num_rows(), config_.k);
  DenseMatrix fi(interactions.num_cols(), config_.k);
  fu.FillUniform(&rng, 0.0, scale);
  fi.FillUniform(&rng, 0.0, scale);
  return FitFrom(interactions, OcularModel(std::move(fu), std::move(fi)));
}

void KernelOcularTrainer::Phase(const CsrMatrix& pattern,
                                const DenseMatrix& fixed,
                                DenseMatrix* target) {
  // Kernels 1+2: per-positive gradient accumulation (Section VI-A).
  DenseMatrix gradients;
  ComputeItemGradientsKernel(pattern, fixed, *target, config_.lambda, &pool_,
                             &gradients);

  // Kernel 3: row-wise Armijo update with the precomputed gradients. The
  // complement Σ_{r=0} f_n needed by the line-search objective is formed
  // from the fixed side's column sums.
  const std::vector<double> sums = fixed.ColumnSums();
  pool_.ParallelForChunked(
      0, target->rows(),
      [&](size_t lo, size_t hi) {
        std::vector<double> complement(config_.k);
        for (size_t row = lo; row < hi; ++row) {
          const uint32_t r = static_cast<uint32_t>(row);
          auto neighbors = pattern.Row(r);
          for (uint32_t c = 0; c < config_.k; ++c) complement[c] = sums[c];
          for (uint32_t n : neighbors) {
            auto other_row = fixed.Row(n);
            for (uint32_t c = 0; c < config_.k; ++c) {
              complement[c] -= other_row[c];
            }
          }
          internal::ArmijoStep(target->Row(r), gradients.Row(r), neighbors,
                               fixed, complement, config_.lambda, 1.0, {},
                               config_);
        }
      },
      /*grain=*/8);
}

Result<OcularFitResult> KernelOcularTrainer::FitFrom(
    const CsrMatrix& interactions, OcularModel initial) {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  if (config_.variant != OcularVariant::kAbsolute) {
    return Status::InvalidArgument(
        "KernelOcularTrainer supports the absolute variant only");
  }
  if (config_.use_biases) {
    return Status::InvalidArgument(
        "KernelOcularTrainer does not support the bias extension");
  }
  if (interactions.nnz() == 0) {
    return Status::InvalidArgument("interaction matrix has no positives");
  }
  if (initial.num_users() != interactions.num_rows() ||
      initial.num_items() != interactions.num_cols() ||
      initial.k() != config_.k) {
    return Status::InvalidArgument("initial model shape mismatch");
  }

  OcularFitResult out;
  out.model = std::move(initial);
  DenseMatrix& fu = *out.model.mutable_user_factors();
  DenseMatrix& fi = *out.model.mutable_item_factors();
  const CsrMatrix transposed = interactions.Transpose();

  Stopwatch watch;
  double prev_q = config_.track_objective
                      ? ObjectiveQ(out.model, interactions, config_.lambda)
                      : 0.0;
  for (uint32_t sweep = 0; sweep < config_.max_sweeps; ++sweep) {
    Phase(transposed, fu, &fi);    // item phase
    Phase(interactions, fi, &fu);  // user phase
    out.sweeps_run = sweep + 1;
    if (config_.track_objective) {
      const double q = ObjectiveQ(out.model, interactions, config_.lambda);
      out.trace.push_back(SweepStats{sweep, q, watch.ElapsedSeconds()});
      const double rel_drop = (prev_q - q) / std::max(std::abs(prev_q), 1e-12);
      if (rel_drop < config_.tolerance) {
        out.converged = true;
        break;
      }
      prev_q = q;
    }
  }
  return out;
}

}  // namespace ocular
