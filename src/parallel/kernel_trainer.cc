#include "parallel/kernel_trainer.h"

#include <cmath>
#include <numeric>

#include "common/timer.h"
#include "parallel/gradient_kernel.h"
#include "parallel/partition.h"

namespace ocular {

Result<OcularFitResult> KernelOcularTrainer::Fit(
    const CsrMatrix& interactions) {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  Rng rng(config_.seed);
  const double scale =
      config_.init_scale / std::sqrt(static_cast<double>(config_.k));
  DenseMatrix fu(interactions.num_rows(), config_.k);
  DenseMatrix fi(interactions.num_cols(), config_.k);
  fu.FillUniform(&rng, 0.0, scale);
  fi.FillUniform(&rng, 0.0, scale);
  return FitFrom(interactions, OcularModel(std::move(fu), std::move(fi)));
}

void KernelOcularTrainer::Phase(
    const CsrMatrix& pattern, const DenseMatrix& fixed, DenseMatrix* target,
    const std::vector<std::pair<size_t, size_t>>& ranges,
    std::vector<internal::BlockWorkspace>* workspaces, double* step_hints,
    double* block_q) {
  // Kernels 1+2: per-positive gradient accumulation (Section VI-A).
  DenseMatrix gradients;
  ComputeItemGradientsKernel(pattern, fixed, *target, config_.lambda, &pool_,
                             &gradients);

  // Kernel 3: row-wise Armijo update with the precomputed gradients. The
  // line-search objective recovers the complement term from the fixed
  // side's column sums and the per-neighbor dots, so nothing is
  // materialized per row.
  const std::vector<double> sums = fixed.ColumnSums();
  pool_.ParallelForRanges(ranges, [&](size_t lo, size_t hi) {
    internal::BlockWorkspace& ws =
        (*workspaces)[ThreadPool::ScratchSlot(pool_.num_threads())];
    for (size_t row = lo; row < hi; ++row) {
      const uint32_t r = static_cast<uint32_t>(row);
      ws.Invalidate();
      const internal::BlockStepResult res = internal::ArmijoStep(
          target->Row(r), gradients.Row(r), pattern.Row(r), fixed, sums,
          config_.lambda, 1.0, {}, config_, &ws, &step_hints[row]);
      if (block_q != nullptr) block_q[row] = res.objective;
    }
  });
}

Result<OcularFitResult> KernelOcularTrainer::FitFrom(
    const CsrMatrix& interactions, OcularModel initial) {
  OCULAR_RETURN_IF_ERROR(config_.Validate());
  if (config_.variant != OcularVariant::kAbsolute) {
    return Status::InvalidArgument(
        "KernelOcularTrainer supports the absolute variant only");
  }
  if (config_.use_biases) {
    return Status::InvalidArgument(
        "KernelOcularTrainer does not support the bias extension");
  }
  if (interactions.nnz() == 0) {
    return Status::InvalidArgument("interaction matrix has no positives");
  }
  if (initial.num_users() != interactions.num_rows() ||
      initial.num_items() != interactions.num_cols() ||
      initial.k() != config_.k) {
    return Status::InvalidArgument("initial model shape mismatch");
  }

  OcularFitResult out;
  out.model = std::move(initial);
  DenseMatrix& fu = *out.model.mutable_user_factors();
  DenseMatrix& fi = *out.model.mutable_item_factors();
  const CsrMatrix transposed = interactions.Transpose();

  // Pattern-derived state computed once per fit: nnz-balanced row ranges
  // for both phases and the per-worker block-update workspaces.
  const std::vector<std::pair<size_t, size_t>> item_ranges =
      BalancedRowRanges(transposed.row_ptr(), pool_.num_threads());
  const std::vector<std::pair<size_t, size_t>> user_ranges =
      BalancedRowRanges(interactions.row_ptr(), pool_.num_threads());
  const uint32_t max_deg =
      std::max(interactions.MaxRowDegree(), transposed.MaxRowDegree());
  std::vector<internal::BlockWorkspace> workspaces(pool_.num_threads() + 1);
  for (auto& ws : workspaces) ws.Reserve(config_.k, max_deg);

  // Per-row adaptive line-search state for each side (accepted backtrack
  // exponents; see ArmijoStep).
  std::vector<double> item_steps(interactions.num_cols(), 0.0);
  std::vector<double> user_steps(interactions.num_rows(), 0.0);

  std::vector<double> block_q(
      config_.track_objective ? interactions.num_rows() : 0, 0.0);

  Stopwatch watch;
  double prev_q = config_.track_objective
                      ? ObjectiveQ(out.model, interactions, config_.lambda)
                      : 0.0;
  for (uint32_t sweep = 0; sweep < config_.max_sweeps; ++sweep) {
    // Item phase, then user phase; the user phase runs last, so its block
    // objectives describe the end-of-sweep model and their row-ordered sum
    // plus the item-side regularizer IS the sweep's Q (fused tracking).
    Phase(transposed, fu, &fi, item_ranges, &workspaces, item_steps.data(),
          nullptr);
    Phase(interactions, fi, &fu, user_ranges, &workspaces, user_steps.data(),
          config_.track_objective ? block_q.data() : nullptr);
    out.sweeps_run = sweep + 1;
    if (config_.track_objective) {
      const double q = std::accumulate(block_q.begin(), block_q.end(), 0.0) +
                       config_.lambda * fi.SquaredFrobeniusNorm();
      out.trace.push_back(SweepStats{sweep, q, watch.ElapsedSeconds()});
      const double rel_drop = (prev_q - q) / std::max(std::abs(prev_q), 1e-12);
      if (rel_drop < config_.tolerance) {
        out.converged = true;
        break;
      }
      prev_q = q;
    }
  }
  return out;
}

}  // namespace ocular
