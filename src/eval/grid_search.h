#ifndef OCULAR_EVAL_GRID_SEARCH_H_
#define OCULAR_EVAL_GRID_SEARCH_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "eval/metrics.h"
#include "eval/recommender.h"

namespace ocular {

/// One hyper-parameter point of the (K, lambda) grid.
struct GridPoint {
  uint32_t k = 0;
  double lambda = 0.0;
};

/// Result of evaluating one grid point.
struct GridCell {
  GridPoint point;
  double recall = 0.0;
  double map = 0.0;
  double train_seconds = 0.0;
};

/// Builds a fresh recommender for a grid point (e.g. an OcularRecommender
/// with that K and lambda).
using RecommenderFactory =
    std::function<std::unique_ptr<Recommender>(const GridPoint&)>;

/// Cross-validated grid search over (K, lambda), the hyper-parameter
/// procedure of Sections IV-B and VII-C / Figure 9. Trains one model per
/// grid point on `train`, evaluates recall@m / MAP@m on `validation`, and
/// returns all cells plus the argmax-by-recall index.
struct GridSearchResult {
  std::vector<GridCell> cells;
  size_t best_index = 0;  // argmax recall

  const GridCell& best() const { return cells[best_index]; }
};

Result<GridSearchResult> GridSearch(const RecommenderFactory& factory,
                                    const std::vector<uint32_t>& ks,
                                    const std::vector<double>& lambdas,
                                    const CsrMatrix& train,
                                    const CsrMatrix& validation, uint32_t m);

/// Renders the grid as a text heatmap (rows = lambda, cols = K), the
/// Figure 9 artifact. Values are recall@m scaled to [0,9] glyphs plus the
/// raw numbers.
std::string RenderGridHeatmap(const GridSearchResult& result);

}  // namespace ocular

#endif  // OCULAR_EVAL_GRID_SEARCH_H_
