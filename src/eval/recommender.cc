#include "eval/recommender.h"

#include <algorithm>

namespace ocular {

std::vector<ScoredItem> TopM(const std::vector<double>& scores, uint32_t m,
                             std::span<const uint32_t> exclude_sorted) {
  std::vector<ScoredItem> heap;  // min-heap of the current best m
  heap.reserve(m + 1);
  auto worse = [](const ScoredItem& a, const ScoredItem& b) {
    // Comparator for a min-heap where the *worst* kept item is on top.
    // a is "greater" (better) than b if it has a higher score, or an equal
    // score and a lower index.
    if (a.score != b.score) return a.score > b.score;
    return a.item < b.item;
  };
  size_t ex = 0;
  for (uint32_t i = 0; i < scores.size(); ++i) {
    while (ex < exclude_sorted.size() && exclude_sorted[ex] < i) ++ex;
    if (ex < exclude_sorted.size() && exclude_sorted[ex] == i) continue;
    ScoredItem cand{i, scores[i]};
    if (heap.size() < m) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (!heap.empty() && worse(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  // sort_heap with a "better-than" comparator yields best-first order.
  std::sort_heap(heap.begin(), heap.end(), worse);
  return heap;
}

std::vector<ScoredItem> Recommender::Recommend(uint32_t u, uint32_t m,
                                               const CsrMatrix& exclude) const {
  std::vector<double> scores(num_items());
  for (uint32_t i = 0; i < scores.size(); ++i) scores[i] = Score(u, i);
  std::span<const uint32_t> ex;
  if (u < exclude.num_rows()) ex = exclude.Row(u);
  return TopM(scores, m, ex);
}

}  // namespace ocular
