#include "eval/recommender.h"

#include <algorithm>
#include <limits>

namespace ocular {

void Recommender::ScoreBlock(uint32_t u, uint32_t item_begin,
                             uint32_t item_end, std::span<double> out) const {
  for (uint32_t i = item_begin; i < item_end; ++i) {
    out[i - item_begin] = Score(u, i);
  }
}

namespace topm {

void MaskExcluded(std::span<double> scores, uint32_t first_item,
                  std::span<const uint32_t> exclude_sorted, size_t* ex) {
  const size_t n_ex = exclude_sorted.size();
  const uint32_t end = first_item + static_cast<uint32_t>(scores.size());
  while (*ex < n_ex && exclude_sorted[*ex] < first_item) ++*ex;
  for (; *ex < n_ex && exclude_sorted[*ex] < end; ++*ex) {
    scores[exclude_sorted[*ex] - first_item] =
        std::numeric_limits<double>::quiet_NaN();
  }
}

}  // namespace topm

void TopMSelector::Begin(std::vector<ScoredItem>* selection, uint32_t m,
                         double min_score, size_t max_candidates) {
  buf_ = selection;
  m_ = m;
  // The buffer never needs to outgrow the candidate universe (+1 slot for
  // the unconditional store).
  cap_ = std::min(topm::SelectionCapacity(m), max_candidates + 1);
  buf_->resize(cap_);
  cnt_ = 0;
  bar_ = min_score;
  keep_ties_ = 1;
}

/// One nth_element keeps the exact best m (unique under the Outranks total
/// order) and tightens the bar.
void TopMSelector::Reduce() {
  if (cnt_ <= m_) return;
  std::nth_element(buf_->begin(), buf_->begin() + (m_ - 1),
                   buf_->begin() + cnt_, topm::Outranks);
  cnt_ = m_;
  bar_ = (*buf_)[m_ - 1].score;
  keep_ties_ = 0;
}

void TopMSelector::ScanRun(const double* scores, uint32_t first_item,
                           uint32_t n) {
  ScoredItem* out = buf_->data();
  for (uint32_t q = 0; q < n; ++q) {
    const double s = scores[q];
    out[cnt_] = ScoredItem{first_item + q, s};
    cnt_ += static_cast<size_t>(s > bar_) |
            (keep_ties_ & static_cast<size_t>(s == bar_));
    if (cnt_ == cap_) {
      Reduce();
      out = buf_->data();
    }
  }
}

void TopMSelector::ScanSegment(std::span<const double> scores,
                               uint32_t first_item,
                               std::span<const uint32_t> exclude_sorted,
                               size_t* ex) {
  const size_t n_ex = exclude_sorted.size();
  const uint32_t len = static_cast<uint32_t>(scores.size());
  uint32_t j = 0;
  while (j < len) {
    while (*ex < n_ex && exclude_sorted[*ex] < first_item + j) ++*ex;
    uint32_t run_end = len;
    if (*ex < n_ex) {
      const uint32_t e = exclude_sorted[*ex];
      if (e == first_item + j) {
        ++j;
        ++*ex;
        continue;
      }
      if (e < first_item + len) run_end = e - first_item;
    }
    ScanRun(scores.data() + j, first_item + j, run_end - j);
    j = run_end;
  }
}

void TopMSelector::Finish() {
  Reduce();
  std::sort(buf_->begin(), buf_->begin() + cnt_, topm::Outranks);
  buf_->resize(cnt_);
}

void TopMSelector::FinishRaw(const Recommender& rec) {
  Reduce();
  for (size_t r = 0; r < cnt_; ++r) {
    (*buf_)[r].score = rec.ScoreFromRaw((*buf_)[r].score);
  }
  // The raw and public orders agree except on exact public-score ties;
  // re-sorting the survivors by the public order restores the public
  // tie-break within the kept set.
  std::sort(buf_->begin(), buf_->begin() + cnt_, topm::Outranks);
  buf_->resize(cnt_);
}

void TopMInto(std::span<const double> scores, uint32_t m,
              std::span<const uint32_t> exclude_sorted, double min_score,
              std::vector<ScoredItem>* selection) {
  selection->clear();
  if (m == 0) return;
  TopMSelector sel;
  sel.Begin(selection, m, min_score, scores.size());
  size_t ex = 0;
  sel.ScanSegment(scores, /*first_item=*/0, exclude_sorted, &ex);
  sel.Finish();
}

std::vector<ScoredItem> TopM(const std::vector<double>& scores, uint32_t m,
                             std::span<const uint32_t> exclude_sorted) {
  std::vector<ScoredItem> selection;
  TopMInto(scores, m, exclude_sorted,
           -std::numeric_limits<double>::infinity(), &selection);
  return selection;
}

void RecommendBlockedInto(const Recommender& rec, uint32_t u, uint32_t m,
                          std::span<const uint32_t> exclude_sorted,
                          double min_score, uint32_t block_items,
                          std::vector<double>* tile,
                          std::vector<ScoredItem>* selection) {
  selection->clear();
  if (m == 0) return;
  const uint32_t n = rec.num_items();
  if (block_items == 0) block_items = kDefaultScoreBlockItems;
  tile->resize(std::min<size_t>(block_items, n));
  // Unthresholded queries select on the cheap raw kernel and map only the
  // kept m values back to public scores; a finite min_score needs exact
  // public-score thresholding, so that path scores publicly throughout.
  const bool raw =
      min_score == -std::numeric_limits<double>::infinity();
  TopMSelector sel;
  sel.Begin(selection, m, min_score, n);
  size_t ex = 0;
  for (uint32_t b0 = 0; b0 < n; b0 += block_items) {
    const uint32_t b1 = std::min(n, b0 + block_items);
    const std::span<double> block(tile->data(), b1 - b0);
    if (raw) {
      rec.RawScoreBlock(u, b0, b1, block);
    } else {
      rec.ScoreBlock(u, b0, b1, block);
    }
    topm::MaskExcluded(block, b0, exclude_sorted, &ex);
    sel.ScanRun(block.data(), b0, b1 - b0);
  }
  if (raw) {
    sel.FinishRaw(rec);
  } else {
    sel.Finish();
  }
}

std::vector<ScoredItem> Recommender::Recommend(uint32_t u, uint32_t m,
                                               const CsrMatrix& exclude) const {
  std::span<const uint32_t> ex;
  if (u < exclude.num_rows()) ex = exclude.Row(u);
  std::vector<double> tile;
  std::vector<ScoredItem> selection;
  RecommendBlockedInto(*this, u, m, ex,
                       -std::numeric_limits<double>::infinity(),
                       kDefaultScoreBlockItems, &tile, &selection);
  return selection;
}

}  // namespace ocular
