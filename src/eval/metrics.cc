#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ocular {

namespace {

bool IsRelevant(std::span<const uint32_t> relevant_sorted, uint32_t item) {
  return std::binary_search(relevant_sorted.begin(), relevant_sorted.end(),
                            item);
}

}  // namespace

double RecallAtM(std::span<const ScoredItem> ranked, uint32_t m,
                 std::span<const uint32_t> relevant_sorted) {
  if (relevant_sorted.empty()) return 0.0;
  const size_t top = std::min<size_t>(m, ranked.size());
  size_t hits = 0;
  for (size_t r = 0; r < top; ++r) {
    if (IsRelevant(relevant_sorted, ranked[r].item)) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(relevant_sorted.size());
}

double PrecisionAtM(std::span<const ScoredItem> ranked, uint32_t m,
                    std::span<const uint32_t> relevant_sorted) {
  if (m == 0) return 0.0;
  const size_t top = std::min<size_t>(m, ranked.size());
  size_t hits = 0;
  for (size_t r = 0; r < top; ++r) {
    if (IsRelevant(relevant_sorted, ranked[r].item)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(m);
}

double AveragePrecisionAtM(std::span<const ScoredItem> ranked, uint32_t m,
                           std::span<const uint32_t> relevant_sorted) {
  if (relevant_sorted.empty() || m == 0) return 0.0;
  const size_t top = std::min<size_t>(m, ranked.size());
  size_t hits = 0;
  double ap = 0.0;
  for (size_t r = 0; r < top; ++r) {
    if (IsRelevant(relevant_sorted, ranked[r].item)) {
      ++hits;
      // Prec(r+1) at a position that holds a relevant item.
      ap += static_cast<double>(hits) / static_cast<double>(r + 1);
    }
  }
  const double denom = static_cast<double>(
      std::min<size_t>(relevant_sorted.size(), m));
  return ap / denom;
}

double NdcgAtM(std::span<const ScoredItem> ranked, uint32_t m,
               std::span<const uint32_t> relevant_sorted) {
  if (relevant_sorted.empty() || m == 0) return 0.0;
  const size_t top = std::min<size_t>(m, ranked.size());
  double dcg = 0.0;
  for (size_t r = 0; r < top; ++r) {
    if (IsRelevant(relevant_sorted, ranked[r].item)) {
      dcg += 1.0 / std::log2(static_cast<double>(r) + 2.0);
    }
  }
  const size_t ideal = std::min<size_t>(relevant_sorted.size(), m);
  double idcg = 0.0;
  for (size_t r = 0; r < ideal; ++r) {
    idcg += 1.0 / std::log2(static_cast<double>(r) + 2.0);
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

double HitRateAtM(std::span<const ScoredItem> ranked, uint32_t m,
                  std::span<const uint32_t> relevant_sorted) {
  const size_t top = std::min<size_t>(m, ranked.size());
  for (size_t r = 0; r < top; ++r) {
    if (IsRelevant(relevant_sorted, ranked[r].item)) return 1.0;
  }
  return 0.0;
}

double ReciprocalRankAtM(std::span<const ScoredItem> ranked, uint32_t m,
                         std::span<const uint32_t> relevant_sorted) {
  const size_t top = std::min<size_t>(m, ranked.size());
  for (size_t r = 0; r < top; ++r) {
    if (IsRelevant(relevant_sorted, ranked[r].item)) {
      return 1.0 / static_cast<double>(r + 1);
    }
  }
  return 0.0;
}

Result<double> SampledAuc(const Recommender& rec, const CsrMatrix& train,
                          const CsrMatrix& test,
                          uint32_t samples_per_positive, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (samples_per_positive == 0) {
    return Status::InvalidArgument("samples_per_positive must be positive");
  }
  if (train.num_rows() != test.num_rows() ||
      train.num_cols() != test.num_cols()) {
    return Status::InvalidArgument("train/test shape mismatch");
  }
  double score = 0.0;
  uint64_t trials = 0;
  // Per-user score row, filled tile-by-tile through the blocked ScoreBlock
  // kernels and reused across users: every comparison below is a table
  // lookup instead of a virtual per-pair Score call. Only worth it when
  // the user's sampled pairs amortize the full-catalog block sweep —
  // vectorized block scoring is a few times cheaper per item than the
  // virtual per-pair path, so the break-even sits at pairs ~ n_items / 4;
  // below that (huge sparse catalogs, few positives) per-pair wins.
  std::vector<double> scores;
  const uint32_t n_items = train.num_cols();
  for (uint32_t u = 0; u < test.num_rows(); ++u) {
    // Users whose knowns cover the catalog admit no negative samples.
    if (train.RowDegree(u) + test.RowDegree(u) >= train.num_cols()) {
      continue;
    }
    if (test.RowDegree(u) == 0) continue;  // no positives, no trials
    const uint64_t pairs = static_cast<uint64_t>(test.RowDegree(u)) *
                           (1 + samples_per_positive);
    const bool blocked = pairs * 4 >= n_items;
    if (blocked) {
      scores.resize(n_items);
      for (uint32_t b0 = 0; b0 < n_items; b0 += kDefaultScoreBlockItems) {
        const uint32_t b1 = std::min(n_items, b0 + kDefaultScoreBlockItems);
        rec.ScoreBlock(u, b0, b1,
                       std::span<double>(scores.data() + b0, b1 - b0));
      }
    }
    for (uint32_t i : test.Row(u)) {
      const double si = blocked ? scores[i] : rec.Score(u, i);
      for (uint32_t s = 0; s < samples_per_positive; ++s) {
        uint32_t j;
        do {
          j = static_cast<uint32_t>(rng->UniformInt(train.num_cols()));
        } while (train.HasEntry(u, j) || test.HasEntry(u, j));
        const double sj = blocked ? scores[j] : rec.Score(u, j);
        if (si > sj) {
          score += 1.0;
        } else if (si == sj) {
          score += 0.5;
        }
        ++trials;
      }
    }
  }
  if (trials == 0) {
    return Status::FailedPrecondition("no test positives to evaluate");
  }
  return score / static_cast<double>(trials);
}

Result<std::vector<MetricsAtM>> EvaluateRanking(
    const Recommender& rec, const CsrMatrix& train, const CsrMatrix& test,
    const std::vector<uint32_t>& cutoffs) {
  if (cutoffs.empty()) return Status::InvalidArgument("cutoffs empty");
  if (!std::is_sorted(cutoffs.begin(), cutoffs.end())) {
    return Status::InvalidArgument("cutoffs must be ascending");
  }
  if (cutoffs.front() == 0) {
    return Status::InvalidArgument("cutoffs must be positive");
  }
  if (train.num_rows() != test.num_rows() ||
      train.num_cols() != test.num_cols()) {
    return Status::InvalidArgument("train/test shape mismatch");
  }
  const uint32_t max_m = cutoffs.back();

  std::vector<MetricsAtM> out(cutoffs.size());
  for (size_t c = 0; c < cutoffs.size(); ++c) out[c].m = cutoffs[c];

  // Blocked ranking with per-call scratch reuse: one score tile and one
  // selection heap serve every user (the shape RecommendForAllUsers uses,
  // minus the per-user output lists).
  std::vector<double> tile;
  std::vector<ScoredItem> ranked;
  for (uint32_t u = 0; u < test.num_rows(); ++u) {
    auto relevant = test.Row(u);
    if (relevant.empty()) continue;  // user has no test positives
    RecommendBlockedInto(rec, u, max_m, train.Row(u),
                         -std::numeric_limits<double>::infinity(),
                         kDefaultScoreBlockItems, &tile, &ranked);
    for (size_t c = 0; c < cutoffs.size(); ++c) {
      const uint32_t m = cutoffs[c];
      out[c].recall += RecallAtM(ranked, m, relevant);
      out[c].map += AveragePrecisionAtM(ranked, m, relevant);
      out[c].precision += PrecisionAtM(ranked, m, relevant);
      out[c].ndcg += NdcgAtM(ranked, m, relevant);
      out[c].hit_rate += HitRateAtM(ranked, m, relevant);
      out[c].mrr += ReciprocalRankAtM(ranked, m, relevant);
      ++out[c].num_users;
    }
  }
  for (auto& row : out) {
    if (row.num_users > 0) {
      const double n = row.num_users;
      row.recall /= n;
      row.map /= n;
      row.precision /= n;
      row.ndcg /= n;
      row.hit_rate /= n;
      row.mrr /= n;
    }
  }
  return out;
}

Result<MetricsAtM> EvaluateRankingAtM(const Recommender& rec,
                                      const CsrMatrix& train,
                                      const CsrMatrix& test, uint32_t m) {
  OCULAR_ASSIGN_OR_RETURN(auto rows,
                          EvaluateRanking(rec, train, test, {m}));
  return rows.front();
}

}  // namespace ocular
