#include "eval/cross_validation.h"

#include <cmath>

#include "common/timer.h"
#include "eval/metrics.h"

namespace ocular {

Result<FoldMetrics> CrossValidate(const RecommenderFactory& factory,
                                  const GridPoint& point,
                                  const CsrMatrix& interactions,
                                  uint32_t num_folds, uint32_t m, Rng* rng) {
  if (!factory) return Status::InvalidArgument("null factory");
  OCULAR_ASSIGN_OR_RETURN(auto folds,
                          KFoldSplits(interactions, num_folds, rng));
  FoldMetrics out;
  for (const auto& fold : folds) {
    std::unique_ptr<Recommender> rec = factory(point);
    if (rec == nullptr) return Status::Internal("factory returned null");
    OCULAR_RETURN_IF_ERROR(rec->Fit(fold.train));
    OCULAR_ASSIGN_OR_RETURN(
        MetricsAtM metrics, EvaluateRankingAtM(*rec, fold.train, fold.test, m));
    out.recalls.push_back(metrics.recall);
    out.maps.push_back(metrics.map);
  }
  for (size_t f = 0; f < out.recalls.size(); ++f) {
    out.mean_recall += out.recalls[f];
    out.mean_map += out.maps[f];
  }
  out.mean_recall /= static_cast<double>(out.recalls.size());
  out.mean_map /= static_cast<double>(out.maps.size());
  double var = 0.0;
  for (double r : out.recalls) {
    var += (r - out.mean_recall) * (r - out.mean_recall);
  }
  out.stddev_recall =
      std::sqrt(var / static_cast<double>(out.recalls.size()));
  return out;
}

Result<GridSearchResult> CrossValidatedGridSearch(
    const RecommenderFactory& factory, const std::vector<uint32_t>& ks,
    const std::vector<double>& lambdas, const CsrMatrix& interactions,
    uint32_t num_folds, uint32_t m, Rng* rng) {
  if (ks.empty() || lambdas.empty()) {
    return Status::InvalidArgument("empty grid");
  }
  GridSearchResult result;
  result.cells.reserve(ks.size() * lambdas.size());
  for (double lambda : lambdas) {
    for (uint32_t k : ks) {
      GridPoint point{k, lambda};
      Stopwatch watch;
      OCULAR_ASSIGN_OR_RETURN(
          FoldMetrics fm,
          CrossValidate(factory, point, interactions, num_folds, m, rng));
      result.cells.push_back(GridCell{point, fm.mean_recall, fm.mean_map,
                                      watch.ElapsedSeconds()});
    }
  }
  result.best_index = 0;
  for (size_t i = 1; i < result.cells.size(); ++i) {
    if (result.cells[i].recall > result.cells[result.best_index].recall) {
      result.best_index = i;
    }
  }
  return result;
}

}  // namespace ocular
