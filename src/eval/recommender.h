#ifndef OCULAR_EVAL_RECOMMENDER_H_
#define OCULAR_EVAL_RECOMMENDER_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "sparse/csr.h"

namespace ocular {

/// An item with a relevance score, as returned by Recommend().
struct ScoredItem {
  uint32_t item = 0;
  double score = 0.0;

  friend bool operator==(const ScoredItem& a, const ScoredItem& b) {
    return a.item == b.item && a.score == b.score;
  }
};

/// Default number of items per scoring tile: 4096 doubles = 32 KiB, sized
/// so the tile stays L1/L2-resident across the K accumulation passes of
/// the factor-model ScoreBlock kernels.
inline constexpr uint32_t kDefaultScoreBlockItems = 4096;

/// Abstract one-class recommender. All algorithms in the library (OCuLaR,
/// R-OCuLaR, wALS, iALS, BPR, user/item kNN, popularity, coclust)
/// implement this interface, which is what the evaluation harness, the
/// serving engine and the benchmark drivers consume.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Short display name for report tables ("OCuLaR", "wALS", ...).
  virtual std::string name() const = 0;

  /// Trains on a binary interaction matrix (rows = users, cols = items).
  virtual Status Fit(const CsrMatrix& interactions) = 0;

  /// Relevance score of item `i` for user `u`; higher means more relevant.
  /// Only valid after a successful Fit(). Scores need not be probabilities;
  /// only their per-user ordering matters to the evaluator.
  virtual double Score(uint32_t u, uint32_t i) const = 0;

  /// Scores the contiguous item block [item_begin, item_end) for `u` into
  /// `out` (out.size() == item_end - item_begin; out[j] must equal
  /// Score(u, item_begin + j) to 1e-12 relative). This is the bulk-serving
  /// hot path: the default loops over Score(), subclasses override it with
  /// tight block kernels (tiled factor products, sparse accumulation) that
  /// the compiler can vectorize.
  virtual void ScoreBlock(uint32_t u, uint32_t item_begin, uint32_t item_end,
                          std::span<double> out) const;

  /// Raw ranking kernel: like ScoreBlock but may fill `out` with any
  /// strictly-increasing transform of Score (cheaper to compute), to be
  /// mapped back through ScoreFromRaw for the values that are actually
  /// kept. OCuLaR-family models rank on the affinity <f_u, f_i> and apply
  /// the 1 - e^{-x} probability map only to the top-m survivors, skipping
  /// the elementwise expm1 over the whole catalog. Selecting on raw scores
  /// ranks identically to the public Score ranking wherever public scores
  /// differ (rounding is monotone); where the map collapses distinct raw
  /// values onto the SAME public double (e.g. saturated probabilities,
  /// affinity > ~36.7), the kept set may pick a different — equally
  /// scored — member of that tie group than the public path's lower-index
  /// rule. The default is ScoreBlock itself.
  virtual void RawScoreBlock(uint32_t u, uint32_t item_begin,
                             uint32_t item_end, std::span<double> out) const {
    ScoreBlock(u, item_begin, item_end, out);
  }

  /// Maps one RawScoreBlock value to the public Score value. Must be a
  /// (weakly) monotone non-decreasing function; identity by default.
  virtual double ScoreFromRaw(double raw) const { return raw; }

  /// Top-`m` items for `u`, highest score first, excluding the stored
  /// entries of `exclude` (pass the training matrix so only unknowns are
  /// recommended, per Section IV-C). The default implementation scores all
  /// items through ScoreBlock; subclasses may override with something
  /// faster.
  virtual std::vector<ScoredItem> Recommend(uint32_t u, uint32_t m,
                                            const CsrMatrix& exclude) const;

  /// Number of items the recommender was fitted on.
  virtual uint32_t num_items() const = 0;
  /// Number of users the recommender was fitted on.
  virtual uint32_t num_users() const = 0;
};

namespace topm {

// Building blocks of bounded top-M selection, shared by TopM, the blocked
// ranking primitive below, and the serving engine's candidate mode. The
// heap is a min-heap of the current best m: heap.front() is the weakest
// kept item, and Outranks is the "a is better than b" order (higher score
// wins; equal scores break toward the lower index, matching a stable full
// sort).

inline bool Outranks(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

/// Considers one candidate for the bounded best-m heap. Candidates scoring
/// below `min_score` are rejected before any heap work (pass -infinity for
/// unthresholded selection); a full heap rejects candidates that do not
/// outrank its weakest member. Allocation-free once heap capacity >= m.
inline void Consider(std::vector<ScoredItem>& heap, uint32_t m,
                     double min_score, ScoredItem cand) {
  if (cand.score < min_score) return;
  if (heap.size() < m) {
    heap.push_back(cand);
    std::push_heap(heap.begin(), heap.end(), Outranks);
  } else if (!heap.empty() && Outranks(cand, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), Outranks);
    heap.back() = cand;
    std::push_heap(heap.begin(), heap.end(), Outranks);
  }
}

/// Converts the selection heap into best-first order (in place).
inline void SortBestFirst(std::vector<ScoredItem>& heap) {
  std::sort_heap(heap.begin(), heap.end(), Outranks);
}

/// Capacity of the filter-and-reduce selection buffer used by
/// TopMSelector for a top-m query: survivors above the bar are appended
/// (two stores), and only when the buffer fills does one O(buffer)
/// nth_element keep the best m and raise the bar. Workspaces that want
/// allocation-free steady state reserve this much.
inline size_t SelectionCapacity(uint32_t m) {
  return std::max<size_t>(4 * static_cast<size_t>(m), 64);
}

/// Overwrites the scores of excluded items within [first_item, first_item
/// + scores.size()) with quiet NaN, which no selection bar ever passes —
/// so a subsequent TopMSelector::ScanRun drops them without per-item
/// exclusion tests (the exclusion pattern is dense exactly where scores
/// are interesting, making per-item tests the scan's dominant cost). `*ex`
/// is the caller's monotone cursor into exclude_sorted.
void MaskExcluded(std::span<double> scores, uint32_t first_item,
                  std::span<const uint32_t> exclude_sorted, size_t* ex);

}  // namespace topm

class Recommender;

/// Streaming bounded top-m selection over candidates arriving in
/// ascending item order — the filter-and-reduce core of every blocked
/// ranking path. Everything above the running bar is appended to a bound
/// buffer with an always-store + conditional-increment (no data-dependent
/// branch, so bunched competitive scores cost no mispredictions); when the
/// buffer fills, one O(buffer) nth_element keeps the exact best m and
/// raises the bar to the m-th best score. Ascending arrival makes the
/// strict `s <= bar` skip exact: a later candidate tying the bar loses the
/// index tie-break against every kept item. Before the first reduce the
/// bar is the INCLUSIVE min_score entry threshold.
class TopMSelector {
 public:
  /// Binds the caller's selection buffer (resized to the bound capacity;
  /// reserve topm::SelectionCapacity(m) for allocation-free reuse).
  /// `max_candidates` caps the buffer at the candidate universe size.
  void Begin(std::vector<ScoredItem>* selection, uint32_t m,
             double min_score, size_t max_candidates);

  /// Scans an exclusion-free run of contiguous scores; scores[q] belongs
  /// to item first_item + q.
  void ScanRun(const double* scores, uint32_t first_item, uint32_t n);

  /// Splits one score segment at its exclusions (ascending ids; *ex is the
  /// caller's monotone cursor into exclude_sorted) and scans the runs.
  void ScanSegment(std::span<const double> scores, uint32_t first_item,
                   std::span<const uint32_t> exclude_sorted, size_t* ex);

  /// Trims to the exact top-m, best-first, in the bound buffer. Unique
  /// under the (score desc, item asc) total order.
  void Finish();

  /// Finish for RawScoreBlock scans: maps the kept raw scores through
  /// rec.ScoreFromRaw, then orders by the (public score desc, item asc)
  /// total order. Matches the public-score path's final list except where
  /// ScoreFromRaw collapses distinct raw values to one public double at
  /// the selection boundary — then an equally-scored tie member may
  /// differ (see RawScoreBlock).
  void FinishRaw(const Recommender& rec);

 private:
  void Reduce();

  std::vector<ScoredItem>* buf_ = nullptr;
  size_t cnt_ = 0;
  size_t cap_ = 0;
  uint32_t m_ = 0;
  double bar_ = 0.0;
  size_t keep_ties_ = 1;  // 1 until the first reduce (bar == min_score)
};

/// Core of TopM: selects the top-`m` entries of `scores` into the
/// caller-provided `selection` buffer (cleared, then left best-first),
/// excluding the indices in `exclude_sorted` (ascending) and rejecting
/// scores below `min_score` during selection (pass -infinity for no
/// threshold). Reuses the buffer's capacity — with
/// topm::SelectionCapacity(m) reserved, steady-state callers allocate
/// nothing.
void TopMInto(std::span<const double> scores, uint32_t m,
              std::span<const uint32_t> exclude_sorted, double min_score,
              std::vector<ScoredItem>* selection);

/// Selects the top-`m` entries of `scores` (index, score), excluding the
/// indices present in `exclude_sorted` (ascending). Deterministic
/// tie-break: lower index wins, matching a stable full sort. Thin wrapper
/// over TopMInto with a fresh heap and no score threshold.
std::vector<ScoredItem> TopM(const std::vector<double>& scores, uint32_t m,
                             std::span<const uint32_t> exclude_sorted);

/// Blocked per-user ranking primitive: scores all items of `rec` for `u`
/// in tiles of `block_items` via ScoreBlock and selects the top-m with
/// threshold-pruned filter-and-reduce selection. `tile` and `selection`
/// are caller scratch (resized/cleared here, capacity reused); on return
/// *selection holds the ranking best-first. This is the engine under
/// Recommend(), the serving batch path and the ranking evaluators.
void RecommendBlockedInto(const Recommender& rec, uint32_t u, uint32_t m,
                          std::span<const uint32_t> exclude_sorted,
                          double min_score, uint32_t block_items,
                          std::vector<double>* tile,
                          std::vector<ScoredItem>* selection);

}  // namespace ocular

#endif  // OCULAR_EVAL_RECOMMENDER_H_
