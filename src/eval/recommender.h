#ifndef OCULAR_EVAL_RECOMMENDER_H_
#define OCULAR_EVAL_RECOMMENDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sparse/csr.h"

namespace ocular {

/// An item with a relevance score, as returned by Recommend().
struct ScoredItem {
  uint32_t item = 0;
  double score = 0.0;

  friend bool operator==(const ScoredItem& a, const ScoredItem& b) {
    return a.item == b.item && a.score == b.score;
  }
};

/// Abstract one-class recommender. All algorithms in the library (OCuLaR,
/// R-OCuLaR, wALS, BPR, user/item kNN, popularity) implement this
/// interface, which is what the evaluation harness and the benchmark
/// drivers consume.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Short display name for report tables ("OCuLaR", "wALS", ...).
  virtual std::string name() const = 0;

  /// Trains on a binary interaction matrix (rows = users, cols = items).
  virtual Status Fit(const CsrMatrix& interactions) = 0;

  /// Relevance score of item `i` for user `u`; higher means more relevant.
  /// Only valid after a successful Fit(). Scores need not be probabilities;
  /// only their per-user ordering matters to the evaluator.
  virtual double Score(uint32_t u, uint32_t i) const = 0;

  /// Top-`m` items for `u`, highest score first, excluding the stored
  /// entries of `exclude` (pass the training matrix so only unknowns are
  /// recommended, per Section IV-C). The default implementation scores all
  /// items; subclasses may override with something faster.
  virtual std::vector<ScoredItem> Recommend(uint32_t u, uint32_t m,
                                            const CsrMatrix& exclude) const;

  /// Number of items the recommender was fitted on.
  virtual uint32_t num_items() const = 0;
  /// Number of users the recommender was fitted on.
  virtual uint32_t num_users() const = 0;
};

/// Selects the top-`m` entries of `scores` (index, score), excluding the
/// indices present in `exclude_sorted` (ascending). Deterministic
/// tie-break: lower index wins, matching a stable full sort.
std::vector<ScoredItem> TopM(const std::vector<double>& scores, uint32_t m,
                             std::span<const uint32_t> exclude_sorted);

}  // namespace ocular

#endif  // OCULAR_EVAL_RECOMMENDER_H_
