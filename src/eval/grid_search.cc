#include "eval/grid_search.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/strings.h"
#include "common/timer.h"

namespace ocular {

Result<GridSearchResult> GridSearch(const RecommenderFactory& factory,
                                    const std::vector<uint32_t>& ks,
                                    const std::vector<double>& lambdas,
                                    const CsrMatrix& train,
                                    const CsrMatrix& validation, uint32_t m) {
  if (ks.empty() || lambdas.empty()) {
    return Status::InvalidArgument("empty grid");
  }
  if (!factory) return Status::InvalidArgument("null factory");
  GridSearchResult result;
  result.cells.reserve(ks.size() * lambdas.size());
  for (double lambda : lambdas) {
    for (uint32_t k : ks) {
      GridPoint point{k, lambda};
      std::unique_ptr<Recommender> rec = factory(point);
      if (rec == nullptr) {
        return Status::Internal("factory returned null recommender");
      }
      Stopwatch watch;
      OCULAR_RETURN_IF_ERROR(rec->Fit(train));
      const double train_seconds = watch.ElapsedSeconds();
      OCULAR_ASSIGN_OR_RETURN(MetricsAtM metrics,
                              EvaluateRankingAtM(*rec, train, validation, m));
      result.cells.push_back(
          GridCell{point, metrics.recall, metrics.map, train_seconds});
    }
  }
  result.best_index = 0;
  for (size_t i = 1; i < result.cells.size(); ++i) {
    if (result.cells[i].recall > result.cells[result.best_index].recall) {
      result.best_index = i;
    }
  }
  return result;
}

std::string RenderGridHeatmap(const GridSearchResult& result) {
  // Collect axes in encounter order.
  std::vector<uint32_t> ks;
  std::vector<double> lambdas;
  for (const auto& cell : result.cells) {
    if (std::find(ks.begin(), ks.end(), cell.point.k) == ks.end()) {
      ks.push_back(cell.point.k);
    }
    if (std::find(lambdas.begin(), lambdas.end(), cell.point.lambda) ==
        lambdas.end()) {
      lambdas.push_back(cell.point.lambda);
    }
  }
  double lo = 1.0, hi = 0.0;
  for (const auto& cell : result.cells) {
    lo = std::min(lo, cell.recall);
    hi = std::max(hi, cell.recall);
  }
  auto find_cell = [&](uint32_t k, double lambda) -> const GridCell* {
    for (const auto& cell : result.cells) {
      if (cell.point.k == k && cell.point.lambda == lambda) return &cell;
    }
    return nullptr;
  };

  std::ostringstream out;
  out << "recall@M heatmap (rows = lambda, cols = K); '9' = hottest\n";
  out << "lambda\\K  ";
  for (uint32_t k : ks) out << k << "\t";
  out << "\n";
  for (double lambda : lambdas) {
    out << FormatDouble(lambda, 1) << "\t  ";
    for (uint32_t k : ks) {
      const GridCell* cell = find_cell(k, lambda);
      if (cell == nullptr) {
        out << ".\t";
        continue;
      }
      int glyph = 0;
      if (hi > lo) {
        glyph = static_cast<int>(9.0 * (cell->recall - lo) / (hi - lo) + 0.5);
      }
      out << glyph << " " << FormatDouble(cell->recall, 3) << "\t";
    }
    out << "\n";
  }
  const GridCell& best = result.best();
  out << "best: K=" << best.point.k
      << " lambda=" << FormatDouble(best.point.lambda, 2)
      << " recall=" << FormatDouble(best.recall, 4) << "\n";
  return out.str();
}

}  // namespace ocular
