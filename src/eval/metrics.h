#ifndef OCULAR_EVAL_METRICS_H_
#define OCULAR_EVAL_METRICS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "eval/recommender.h"

namespace ocular {

/// recall@M for a single user (Section VII-B.1):
///   |{test positives} ∩ {top-M recs}| / |{test positives}|.
/// `relevant_sorted` must be ascending. Returns 0 when there are no
/// relevant items (callers normally skip such users).
double RecallAtM(std::span<const ScoredItem> ranked, uint32_t m,
                 std::span<const uint32_t> relevant_sorted);

/// precision@m: |relevant ∩ top-m| / m.
double PrecisionAtM(std::span<const ScoredItem> ranked, uint32_t m,
                    std::span<const uint32_t> relevant_sorted);

/// AP@M for a single user, the paper's definition:
///   Σ_{m=1..M} Prec(m) · 1{rec_m relevant} / min(|relevant|, M).
double AveragePrecisionAtM(std::span<const ScoredItem> ranked, uint32_t m,
                           std::span<const uint32_t> relevant_sorted);

/// NDCG@M with binary gains (extra metric, not in the paper's tables).
double NdcgAtM(std::span<const ScoredItem> ranked, uint32_t m,
               std::span<const uint32_t> relevant_sorted);

/// Hit-rate@M: 1 if any relevant item appears in the top-M.
double HitRateAtM(std::span<const ScoredItem> ranked, uint32_t m,
                  std::span<const uint32_t> relevant_sorted);

/// Reciprocal rank of the first relevant item within the top-M (0 if
/// none). The mean over users is MRR@M.
double ReciprocalRankAtM(std::span<const ScoredItem> ranked, uint32_t m,
                         std::span<const uint32_t> relevant_sorted);

/// One row of metric averages at a cutoff M.
struct MetricsAtM {
  uint32_t m = 0;
  double recall = 0.0;
  double map = 0.0;
  double precision = 0.0;
  double ndcg = 0.0;
  double hit_rate = 0.0;
  double mrr = 0.0;
  /// Number of users that contributed (>= 1 test positive).
  uint32_t num_users = 0;
};

/// Evaluates `rec` against `test`, excluding `train` positives from the
/// candidate lists, at each cutoff in `cutoffs` (must be non-empty,
/// ascending). A single top-max(M) ranking per user is reused for all
/// cutoffs. Users without test positives are skipped, per the paper.
Result<std::vector<MetricsAtM>> EvaluateRanking(
    const Recommender& rec, const CsrMatrix& train, const CsrMatrix& test,
    const std::vector<uint32_t>& cutoffs);

/// Convenience: single cutoff.
Result<MetricsAtM> EvaluateRankingAtM(const Recommender& rec,
                                      const CsrMatrix& train,
                                      const CsrMatrix& test, uint32_t m);

/// Sampled ranking AUC: for each test positive (u, i), draws
/// `samples_per_positive` items unknown in BOTH train and test and counts
/// how often Score(u, i) ranks above the unknown (ties count half). An
/// uninformed model scores 0.5. This is the metric behind the library's
/// model-recovery tests; the paper's tables use recall/MAP.
Result<double> SampledAuc(const Recommender& rec, const CsrMatrix& train,
                          const CsrMatrix& test,
                          uint32_t samples_per_positive, Rng* rng);

}  // namespace ocular

#endif  // OCULAR_EVAL_METRICS_H_
