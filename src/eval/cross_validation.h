#ifndef OCULAR_EVAL_CROSS_VALIDATION_H_
#define OCULAR_EVAL_CROSS_VALIDATION_H_

#include "common/rng.h"
#include "data/split.h"
#include "eval/grid_search.h"

namespace ocular {

/// K-fold cross-validated hyper-parameter selection — the procedure the
/// paper prescribes for choosing K and lambda (Section IV-B: "K and λ can
/// be determined from the data via cross-validation").
///
/// For each (K, lambda) grid point, trains on each fold's training part
/// and evaluates recall@m / MAP@m on the held-out part; the cell metrics
/// are fold averages. Returns the same GridSearchResult shape as the
/// single-split GridSearch so heatmap rendering and best-cell selection
/// are shared.
Result<GridSearchResult> CrossValidatedGridSearch(
    const RecommenderFactory& factory, const std::vector<uint32_t>& ks,
    const std::vector<double>& lambdas, const CsrMatrix& interactions,
    uint32_t num_folds, uint32_t m, Rng* rng);

/// Per-fold metrics of a single configuration (for variance reporting).
struct FoldMetrics {
  std::vector<double> recalls;  // one per fold
  std::vector<double> maps;
  double mean_recall = 0.0;
  double mean_map = 0.0;
  double stddev_recall = 0.0;
};

/// Evaluates one factory configuration across folds.
Result<FoldMetrics> CrossValidate(const RecommenderFactory& factory,
                                  const GridPoint& point,
                                  const CsrMatrix& interactions,
                                  uint32_t num_folds, uint32_t m, Rng* rng);

}  // namespace ocular

#endif  // OCULAR_EVAL_CROSS_VALIDATION_H_
