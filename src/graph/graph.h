#ifndef OCULAR_GRAPH_GRAPH_H_
#define OCULAR_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "sparse/csr.h"

namespace ocular {

/// Undirected graph in adjacency-list form (unit edge weights).
///
/// The one-class interaction matrix is viewed as a bipartite graph:
/// node u ∈ [0, n_u) is user u; node n_u + i is item i; every positive
/// r_ui = 1 is an edge (Section II, "Community detection"). Community
/// detection baselines (Modularity / BIGCLAM, Figure 2) run on this view.
class Graph {
 public:
  Graph() = default;

  /// Builds the bipartite user-item graph of an interaction matrix.
  static Graph FromBipartite(const CsrMatrix& interactions);

  /// Builds from an explicit undirected edge list over `num_nodes` nodes.
  /// Self-loops are dropped; duplicate edges collapsed.
  static Result<Graph> FromEdges(
      uint32_t num_nodes,
      const std::vector<std::pair<uint32_t, uint32_t>>& edges);

  uint32_t num_nodes() const { return adjacency_.num_rows(); }
  /// Number of undirected edges.
  size_t num_edges() const { return adjacency_.nnz() / 2; }

  std::span<const uint32_t> Neighbors(uint32_t v) const {
    return adjacency_.Row(v);
  }
  uint32_t Degree(uint32_t v) const { return adjacency_.RowDegree(v); }
  bool HasEdge(uint32_t a, uint32_t b) const {
    return adjacency_.HasEntry(a, b);
  }

  /// For a bipartite graph built by FromBipartite: number of user nodes
  /// (items start at this offset).
  uint32_t bipartite_offset() const { return bipartite_offset_; }

 private:
  CsrMatrix adjacency_;  // symmetric pattern
  uint32_t bipartite_offset_ = 0;
};

/// Newman modularity of a node->community assignment (unit weights):
///   Q = Σ_c [ e_c / m − (d_c / 2m)² ]
/// where e_c = intra-community edges, d_c = total degree of c, m = |E|.
double Modularity(const Graph& graph, const std::vector<uint32_t>& community);

}  // namespace ocular

#endif  // OCULAR_GRAPH_GRAPH_H_
