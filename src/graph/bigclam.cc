#include "graph/bigclam.h"

#include <algorithm>
#include <cmath>

namespace ocular {

namespace {
constexpr double kAffinityFloor = 1e-12;
constexpr double kProbFloor = 1e-12;

double LogLikelihood(const Graph& graph, const DenseMatrix& f) {
  // Σ_edges log(1 − e^{−<fu,fv>}) − Σ_non-edges <fu,fv>, with the
  // complement trick: Σ_{all pairs} <fu,fv> = |Σ_v f_v|² − Σ_v |f_v|²
  // (over ordered pairs, halved) minus the edge part.
  double edge_term = 0.0;
  double edge_dots = 0.0;
  for (uint32_t v = 0; v < graph.num_nodes(); ++v) {
    auto fv = f.Row(v);
    for (uint32_t w : graph.Neighbors(v)) {
      if (w <= v) continue;  // each undirected edge once
      const double dot = vec::Dot(fv, f.Row(w));
      edge_dots += dot;
      edge_term += std::log(std::max(-std::expm1(-dot), kProbFloor));
    }
  }
  const std::vector<double> sums = f.ColumnSums();
  double sum_sq = 0.0;
  for (double s : sums) sum_sq += s * s;
  double self_sq = 0.0;
  for (uint32_t v = 0; v < f.rows(); ++v) {
    self_sq += vec::SquaredNorm(f.Row(v));
  }
  const double all_pairs = 0.5 * (sum_sq - self_sq);
  const double non_edge_dots = all_pairs - edge_dots;
  return edge_term - non_edge_dots;
}

}  // namespace

Result<BigClamResult> RunBigClam(const Graph& graph,
                                 const BigClamConfig& config) {
  if (config.k == 0) return Status::InvalidArgument("k must be positive");
  if (config.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  const uint32_t n = graph.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty graph");

  Rng rng(config.seed);
  BigClamResult out;
  out.factors = DenseMatrix(n, config.k);
  out.factors.FillUniform(&rng, 0.0,
                          1.0 / std::sqrt(static_cast<double>(config.k)));
  DenseMatrix& f = out.factors;

  std::vector<double> grad(config.k);
  double prev_ll = LogLikelihood(graph, f);
  for (uint32_t it = 0; it < config.max_iterations; ++it) {
    std::vector<double> sums = f.ColumnSums();  // Σ_v f_v
    for (uint32_t v = 0; v < n; ++v) {
      auto fv = f.Row(v);
      // Gradient of LL w.r.t. f_v:
      //   Σ_{w∈N(v)} f_w / (e^{<fv,fw>} − 1)  −  Σ_{w∉N(v), w≠v} f_w.
      for (uint32_t c = 0; c < config.k; ++c) {
        grad[c] = -(sums[c] - fv[c]);
      }
      for (uint32_t w : graph.Neighbors(v)) {
        auto fw = f.Row(w);
        const double dot = std::max(vec::Dot(fv, fw), kAffinityFloor);
        const double coef = 1.0 / std::expm1(dot) + 1.0;  // ratio + re-add
        for (uint32_t c = 0; c < config.k; ++c) grad[c] += coef * fw[c];
      }
      // In-place row update; keep Σ_v f_v consistent incrementally
      // (BIGCLAM's sequential update semantics).
      for (uint32_t c = 0; c < config.k; ++c) {
        const double old = fv[c];
        fv[c] = std::max(0.0, old + config.learning_rate * grad[c]);
        sums[c] += fv[c] - old;
      }
    }
    const double ll = LogLikelihood(graph, f);
    out.log_likelihood = ll;
    const double rel =
        std::abs(ll - prev_ll) / std::max(std::abs(prev_ll), 1e-12);
    if (rel < config.tolerance) break;
    prev_ll = ll;
  }

  // Membership threshold.
  double delta = config.membership_threshold;
  if (delta <= 0.0) {
    const double nn = static_cast<double>(n);
    const double eps =
        std::min(0.999, 2.0 * static_cast<double>(graph.num_edges()) /
                            std::max(1.0, nn * (nn - 1.0)));
    delta = std::sqrt(-std::log(1.0 - eps));
  }
  out.threshold = delta;
  out.communities.assign(config.k, {});
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t c = 0; c < config.k; ++c) {
      if (f.At(v, c) > delta) out.communities[c].push_back(v);
    }
  }
  return out;
}

}  // namespace ocular
