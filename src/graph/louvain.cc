#include "graph/louvain.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace ocular {

namespace {

/// Weighted undirected graph used for the aggregated levels.
struct WeightedGraph {
  // adj[v] = (neighbor, weight); self-loops allowed (weight counted once
  // in the list, twice toward the node's weighted degree).
  std::vector<std::vector<std::pair<uint32_t, double>>> adj;
  double two_m = 0.0;  // Σ_v weighted degree = 2m

  uint32_t size() const { return static_cast<uint32_t>(adj.size()); }

  double WeightedDegree(uint32_t v) const {
    double d = 0.0;
    for (const auto& [w, wt] : adj[v]) d += (w == v) ? 2.0 * wt : wt;
    return d;
  }
};

WeightedGraph FromGraph(const Graph& g) {
  WeightedGraph wg;
  wg.adj.resize(g.num_nodes());
  for (uint32_t v = 0; v < g.num_nodes(); ++v) {
    for (uint32_t w : g.Neighbors(v)) {
      wg.adj[v].emplace_back(w, 1.0);
    }
  }
  wg.two_m = 0.0;
  for (uint32_t v = 0; v < wg.size(); ++v) wg.two_m += wg.WeightedDegree(v);
  return wg;
}

/// One Louvain level: greedy local moves until no gain. Returns the
/// node->community map (renumbered to be dense) and whether anything moved.
bool LocalMoves(const WeightedGraph& g, const LouvainConfig& config, Rng* rng,
                std::vector<uint32_t>* community) {
  const uint32_t n = g.size();
  community->resize(n);
  std::iota(community->begin(), community->end(), 0u);

  std::vector<double> degree(n);
  for (uint32_t v = 0; v < n; ++v) degree[v] = g.WeightedDegree(v);
  // sum_tot[c] = total weighted degree of community c.
  std::vector<double> sum_tot = degree;

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  rng->Shuffle(&order);

  bool any_move = false;
  for (uint32_t pass = 0; pass < config.max_passes; ++pass) {
    uint32_t moves = 0;
    for (uint32_t v : order) {
      const uint32_t old_c = (*community)[v];
      // Weight from v to each neighboring community.
      std::unordered_map<uint32_t, double> to_comm;
      double self_loops = 0.0;
      for (const auto& [w, wt] : g.adj[v]) {
        if (w == v) {
          self_loops += wt;
          continue;
        }
        to_comm[(*community)[w]] += wt;
      }
      // Remove v from its community.
      sum_tot[old_c] -= degree[v];
      // Best destination by modularity gain:
      //   ΔQ ∝ k_{v,in}(c) − sum_tot(c) · k_v / 2m.
      uint32_t best_c = old_c;
      double best_gain = to_comm.count(old_c)
                             ? to_comm[old_c] -
                                   sum_tot[old_c] * degree[v] / g.two_m
                             : -sum_tot[old_c] * degree[v] / g.two_m;
      for (const auto& [c, k_in] : to_comm) {
        if (c == old_c) continue;
        const double gain = k_in - sum_tot[c] * degree[v] / g.two_m;
        if (gain > best_gain + config.min_gain) {
          best_gain = gain;
          best_c = c;
        }
      }
      (*community)[v] = best_c;
      sum_tot[best_c] += degree[v];
      if (best_c != old_c) {
        ++moves;
        any_move = true;
      }
    }
    if (moves == 0) break;
  }

  // Renumber communities densely.
  std::unordered_map<uint32_t, uint32_t> renumber;
  for (auto& c : *community) {
    auto [it, inserted] =
        renumber.try_emplace(c, static_cast<uint32_t>(renumber.size()));
    c = it->second;
  }
  return any_move;
}

/// Collapses communities into super-nodes.
WeightedGraph Aggregate(const WeightedGraph& g,
                        const std::vector<uint32_t>& community) {
  uint32_t num_comms = 0;
  for (uint32_t c : community) num_comms = std::max(num_comms, c + 1);
  WeightedGraph out;
  out.adj.resize(num_comms);
  std::vector<std::unordered_map<uint32_t, double>> acc(num_comms);
  for (uint32_t v = 0; v < g.size(); ++v) {
    const uint32_t cv = community[v];
    for (const auto& [w, wt] : g.adj[v]) {
      const uint32_t cw = community[w];
      if (v == w) {
        acc[cv][cv] += wt;  // existing self-loop
      } else if (cv == cw) {
        // Intra-community edge appears from both endpoints; halve into a
        // self-loop weight.
        acc[cv][cv] += wt * 0.5;
      } else {
        acc[cv][cw] += wt;
      }
    }
  }
  for (uint32_t c = 0; c < num_comms; ++c) {
    out.adj[c].assign(acc[c].begin(), acc[c].end());
    std::sort(out.adj[c].begin(), out.adj[c].end());
  }
  out.two_m = g.two_m;
  return out;
}

}  // namespace

LouvainResult DetectCommunitiesLouvain(const Graph& graph,
                                       const LouvainConfig& config) {
  LouvainResult result;
  const uint32_t n = graph.num_nodes();
  result.community.resize(n);
  std::iota(result.community.begin(), result.community.end(), 0u);
  if (graph.num_edges() == 0) {
    result.num_communities = n;
    result.modularity = 0.0;
    return result;
  }

  Rng rng(config.seed);
  WeightedGraph level = FromGraph(graph);
  for (uint32_t lvl = 0; lvl < config.max_levels; ++lvl) {
    std::vector<uint32_t> community;
    const bool moved = LocalMoves(level, config, &rng, &community);
    // Compose with the running assignment.
    for (auto& c : result.community) c = community[c];
    if (!moved) break;
    level = Aggregate(level, community);
    if (level.size() == 1) break;
  }

  uint32_t num_comms = 0;
  for (uint32_t c : result.community) num_comms = std::max(num_comms, c + 1);
  result.num_communities = num_comms;
  result.modularity = ::ocular::Modularity(graph, result.community);
  return result;
}

}  // namespace ocular
