#ifndef OCULAR_GRAPH_BIGCLAM_H_
#define OCULAR_GRAPH_BIGCLAM_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "sparse/dense.h"

namespace ocular {

/// BIGCLAM options (Yang & Leskovec, WSDM 2013).
struct BigClamConfig {
  /// Number of communities.
  uint32_t k = 4;
  uint32_t max_iterations = 100;
  double learning_rate = 0.05;
  /// Stop when the relative log-likelihood improvement falls below this.
  double tolerance = 1e-5;
  uint64_t seed = 1;
  /// Membership threshold δ; <= 0 selects the Yang–Leskovec default
  /// δ = sqrt(-log(1 - ε)) with ε = 2|E| / (N(N−1)).
  double membership_threshold = 0.0;
};

/// BIGCLAM output: non-negative node-community affiliations.
struct BigClamResult {
  DenseMatrix factors;  // num_nodes x K
  /// communities[c] = nodes whose affiliation with c exceeds the threshold.
  std::vector<std::vector<uint32_t>> communities;
  double log_likelihood = 0.0;
  double threshold = 0.0;
};

/// Cluster Affiliation Model for Big Networks: maximizes
///   Σ_{(u,v)∈E} log(1 − e^{−<F_u,F_v>}) − Σ_{(u,v)∉E} <F_u,F_v>
/// over non-negative F by projected gradient ascent with the Σ F row-sum
/// trick. This is the *unregularized, unipartite* ancestor of OCuLaR
/// (Section II): the paper's Figure 2 shows it failing to recover the
/// overlapping co-cluster structure of the bipartite toy example.
Result<BigClamResult> RunBigClam(const Graph& graph,
                                 const BigClamConfig& config);

}  // namespace ocular

#endif  // OCULAR_GRAPH_BIGCLAM_H_
