#ifndef OCULAR_GRAPH_LOUVAIN_H_
#define OCULAR_GRAPH_LOUVAIN_H_

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace ocular {

/// Options for the Louvain modularity optimizer.
struct LouvainConfig {
  /// Maximum local-move passes per level.
  uint32_t max_passes = 20;
  /// Maximum aggregation levels.
  uint32_t max_levels = 10;
  /// Stop a level when a full pass improves modularity less than this.
  double min_gain = 1e-7;
  uint64_t seed = 1;
};

/// Result of a modularity-based community detection run.
struct LouvainResult {
  /// community[v] in [0, num_communities), over the original nodes.
  std::vector<uint32_t> community;
  uint32_t num_communities = 0;
  double modularity = 0.0;
};

/// Greedy modularity optimization (Louvain method; Blondel et al.), the
/// standard *non-overlapping* community detector — stands in for the
/// "Modularity" comparator of Figure 2. Automatically discovers the number
/// of communities, but each node gets exactly one — which is exactly why it
/// cannot represent the overlapping structure of Figure 1.
LouvainResult DetectCommunitiesLouvain(const Graph& graph,
                                       const LouvainConfig& config = {});

}  // namespace ocular

#endif  // OCULAR_GRAPH_LOUVAIN_H_
