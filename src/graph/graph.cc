#include "graph/graph.h"

#include <algorithm>

#include "sparse/coo.h"

namespace ocular {

Graph Graph::FromBipartite(const CsrMatrix& interactions) {
  const uint32_t nu = interactions.num_rows();
  const uint32_t total = nu + interactions.num_cols();
  CooBuilder coo;
  coo.Reserve(interactions.nnz() * 2);
  for (uint32_t u = 0; u < nu; ++u) {
    for (uint32_t i : interactions.Row(u)) {
      coo.Add(u, nu + i);
      coo.Add(nu + i, u);
    }
  }
  Graph g;
  auto entries = coo.Finalize(total, total);
  g.adjacency_ = CsrMatrix::FromCoo(entries.value());
  g.bipartite_offset_ = nu;
  return g;
}

Result<Graph> Graph::FromEdges(
    uint32_t num_nodes,
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  CooBuilder coo;
  coo.Reserve(edges.size() * 2);
  for (const auto& [a, b] : edges) {
    if (a >= num_nodes || b >= num_nodes) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (a == b) continue;  // drop self-loops
    coo.Add(a, b);
    coo.Add(b, a);
  }
  Graph g;
  OCULAR_ASSIGN_OR_RETURN(auto entries, coo.Finalize(num_nodes, num_nodes));
  g.adjacency_ = CsrMatrix::FromCoo(entries);
  return g;
}

double Modularity(const Graph& graph, const std::vector<uint32_t>& community) {
  const double m = static_cast<double>(graph.num_edges());
  if (m == 0.0) return 0.0;
  uint32_t num_comms = 0;
  for (uint32_t c : community) num_comms = std::max(num_comms, c + 1);
  std::vector<double> intra(num_comms, 0.0);   // e_c (each edge once)
  std::vector<double> degree(num_comms, 0.0);  // d_c
  for (uint32_t v = 0; v < graph.num_nodes(); ++v) {
    degree[community[v]] += graph.Degree(v);
    for (uint32_t w : graph.Neighbors(v)) {
      if (v < w && community[v] == community[w]) intra[community[v]] += 1.0;
    }
  }
  double q = 0.0;
  for (uint32_t c = 0; c < num_comms; ++c) {
    const double frac = degree[c] / (2.0 * m);
    q += intra[c] / m - frac * frac;
  }
  return q;
}

}  // namespace ocular
