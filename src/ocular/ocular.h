#ifndef OCULAR_OCULAR_OCULAR_H_
#define OCULAR_OCULAR_OCULAR_H_

/// Umbrella header: pulls in the whole public API of the OCuLaR library.
/// Fine-grained headers remain available for users who care about compile
/// times; this is the "just give me everything" entry point used by the
/// examples in README.md.

// Substrate.
#include "common/flags.h"        // IWYU pragma: export
#include "common/json.h"         // IWYU pragma: export
#include "common/logging.h"      // IWYU pragma: export
#include "common/result.h"       // IWYU pragma: export
#include "common/rng.h"          // IWYU pragma: export
#include "common/status.h"       // IWYU pragma: export
#include "common/strings.h"      // IWYU pragma: export
#include "common/thread_pool.h"  // IWYU pragma: export
#include "common/timer.h"        // IWYU pragma: export

// Sparse linear algebra.
#include "sparse/coo.h"     // IWYU pragma: export
#include "sparse/csr.h"     // IWYU pragma: export
#include "sparse/dense.h"   // IWYU pragma: export
#include "sparse/linalg.h"  // IWYU pragma: export

// Data.
#include "data/dataset.h"    // IWYU pragma: export
#include "data/loaders.h"    // IWYU pragma: export
#include "data/split.h"      // IWYU pragma: export
#include "data/stats.h"      // IWYU pragma: export
#include "data/synthetic.h"  // IWYU pragma: export

// Evaluation.
#include "eval/cross_validation.h"  // IWYU pragma: export
#include "eval/grid_search.h"       // IWYU pragma: export
#include "eval/metrics.h"           // IWYU pragma: export
#include "eval/recommender.h"       // IWYU pragma: export

// Core algorithm.
#include "core/coclusters.h"          // IWYU pragma: export
#include "core/early_stopping.h"      // IWYU pragma: export
#include "core/explain.h"             // IWYU pragma: export
#include "core/fold_in.h"             // IWYU pragma: export
#include "core/incremental.h"         // IWYU pragma: export
#include "core/model_io.h"            // IWYU pragma: export
#include "core/ocular_model.h"        // IWYU pragma: export
#include "core/ocular_recommender.h"  // IWYU pragma: export
#include "core/ocular_trainer.h"      // IWYU pragma: export

// Baselines.
#include "baselines/bpr.h"      // IWYU pragma: export
#include "baselines/coclust.h"  // IWYU pragma: export
#include "baselines/ials.h"     // IWYU pragma: export
#include "baselines/knn.h"   // IWYU pragma: export
#include "baselines/wals.h"  // IWYU pragma: export

// Graph / community detection.
#include "graph/bigclam.h"  // IWYU pragma: export
#include "graph/graph.h"    // IWYU pragma: export
#include "graph/louvain.h"  // IWYU pragma: export

// Parallel substrates.
#include "parallel/gradient_kernel.h"  // IWYU pragma: export
#include "parallel/kernel_trainer.h"   // IWYU pragma: export
#include "parallel/parallel_trainer.h" // IWYU pragma: export

// Serving.
#include "serving/batch.h"         // IWYU pragma: export
#include "serving/render.h"        // IWYU pragma: export
#include "serving/score_engine.h"  // IWYU pragma: export

#endif  // OCULAR_OCULAR_OCULAR_H_
