// ocular_served — long-running model server for OCuLaR binary models.
//
// Holds one or more mmapped binary v2 models resident (ModelRegistry) and
// answers newline-delimited JSON requests through the blocked scoring
// engine, over stdin/stdout by default or a loopback TCP port with
// --port=N. SIGHUP hot-reloads every model file atomically; in-flight
// requests finish on the old mapping.
//
// Examples:
//   ocular_served --models=default=/models/b2b.oclr \
//       --datasets=default=/data/b2b.tsv
//   ocular_served --models=a=/models/a.oclr,b=/models/b.oclr --port=7700
//
//   $ echo '{"cmd":"recommend","user":3,"m":5}' | ocular_served \
//       --models=default=/models/b2b.oclr
//   {"ok":true,"model":"default","user":3,"items":[...]}
//
// See docs/OPERATIONS.md for the full train -> save -> serve -> hot-reload
// walkthrough and the protocol reference in src/serving/daemon.h.

#include "tools/serve_main.h"

namespace ocular {
namespace {

constexpr char kUsage[] = R"(usage: ocular_served --models=name=path[,...]
        [--datasets=name=path[,...]] [--delimiter=C] [--port=N] [--m=N]
        [--workers=N] [--accept-queue=N] [--update-sweeps=N]
        [--max-request-bytes=N] [--io-timeout-ms=N] [--idle-timeout-ms=N]
        [--retry-after-ms=N] [--journal=0|1]

Serves binary v2 (.oclr) model files; convert v1 text models first with
`ocular_cli convert`. Requests are one JSON object per line:
  {"cmd":"recommend","model":"default","user":3,"m":10}
  {"cmd":"models"} | {"cmd":"stats"} | {"cmd":"reload"} | {"cmd":"quit"}

With --port the daemon runs a listener plus --workers serving threads
(default: one per hardware thread); connections beyond --accept-queue
waiting for a worker are shed with a {"ok":false,...,"code":503,
"retry_after_ms":N} reply. Request lines longer than --max-request-bytes
are answered with code 413 and closed; connections idle past
--idle-timeout-ms are reaped with code 408. Updates are journaled to
<model>.update.journal and recovered at startup (--journal=0 disables).
SIGHUP hot-reloads models; SIGTERM drains gracefully (stops accepting,
answers everything already read, prints a final stats line, exits 0).
)";

int Run(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (!flags.Has("models")) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  return RunServeCommand(flags);
}

}  // namespace
}  // namespace ocular

int main(int argc, char** argv) { return ocular::Run(argc, argv); }
