// ocular — command-line interface to the OCuLaR library.
//
// Subcommands:
//   stats      describe an interaction dataset
//   synth      generate a synthetic dataset (shape-calibrated stand-ins)
//   train      fit an OCuLaR / R-OCuLaR model and save it
//   recommend  top-M recommendations for a user (or an ad-hoc history)
//   explain    co-cluster rationale for a (user, item) pair
//   evaluate   train/test split evaluation (recall@M, MAP@M, AUC)
//   convert    v1 text model <-> binary v2 (.oclr) model file
//   shard      split a binary model into a user-sharded *.shardset, or
//              inspect/route against an existing manifest
//   serve      resident model server (same engine as ocular_served)
//   loadtest   concurrent-client throughput/latency probe of a running
//              daemon (the same load generator bench_daemon_hot uses)
//
// Examples:
//   ocular synth --dataset=b2b --scale=0.02 --output=/tmp/b2b.tsv
//   ocular train --input=/tmp/b2b.tsv --model=/tmp/b2b.model --k=16
//       --lambda=0.5   (continued from previous line)
//   ocular recommend --model=/tmp/b2b.model --input=/tmp/b2b.tsv --user=3
//   ocular explain --model=/tmp/b2b.model --input=/tmp/b2b.tsv --user=3
//       --item=17 --json   (continued from previous line)
//   ocular evaluate --input=/tmp/b2b.tsv --k=16 --lambda=0.5 --m=50

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "core/coclusters.h"
#include "core/explain.h"
#include "core/fold_in.h"
#include "core/model_io.h"
#include "core/model_shard.h"
#include "core/model_store.h"
#include "core/ocular_recommender.h"
#include "data/loaders.h"
#include "data/split.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "serving/loadgen.h"
#include "serving/score_engine.h"
#include "tools/serve_main.h"

namespace ocular {
namespace {

constexpr char kUsage[] = R"(usage: ocular <command> [flags]

commands:
  stats      --input=FILE [--format=csv|ml100k|ml1m] [--delimiter=C]
  synth      --dataset=movielens|citeulike|b2b|netflix --scale=S
             --output=FILE [--seed=N]
  train      --input=FILE --model=FILE [--k=N] [--lambda=L]
             [--variant=absolute|relative] [--sweeps=N] [--biases]
             [--seed=N] [--format=...]
  recommend  --model=FILE --input=FILE (--user=N | --history=i1,i2,...)
             [--m=N] [--json]
  explain    --model=FILE --input=FILE --user=N --item=N [--json]
  evaluate   --input=FILE [--k=N] [--lambda=L] [--m=N]
             [--train-fraction=F] [--seed=N] [--format=...]
  convert    --in=FILE --out=FILE [--to=binary|text]
  shard      --in=FILE.oclr --out=BASE.shardset --shards=N
             | --manifest=FILE.shardset [--route=USER]
  serve      --models=name=path[,...] [--datasets=name=path[,...]]
             [--port=N] [--m=N] [--workers=N] [--accept-queue=N]
             [--update-sweeps=N]
  loadtest   --port=N [--clients=C] [--requests=R] [--pipeline=P]
             [--users=U] [--m=N] [--model=NAME] [--json] [--reconnect]
             [--history-every=N --items=I [--history-len=L]]
             | --port=N --idle-conns=N [--burst-clients=C] [--requests=R]
             [--slow-writers=N] [--never-readers=N] [--duration-ms=D]
             [--zipf-skew=S]   (idle-flood mode: hold N keep-alive
             connections while bursty traffic rides through)
)";

Result<Dataset> LoadInput(const Flags& flags) {
  OCULAR_ASSIGN_OR_RETURN(std::string path, flags.RequireString("input"));
  const std::string format = flags.GetString("format", "csv");
  if (format == "ml100k") return LoadMovieLens100K(path);
  if (format == "ml1m") return LoadMovieLens1M(path);
  if (format == "csv") {
    CsvOptions opts;
    const std::string delim = flags.GetString("delimiter", "\t");
    opts.delimiter = delim.empty() ? '\t' : delim[0];
    opts.compact_ids = flags.GetBool("compact-ids", false);
    return LoadCsv(path, opts);
  }
  return Status::InvalidArgument("unknown --format '" + format + "'");
}

OcularConfig ConfigFromFlags(const Flags& flags) {
  OcularConfig cfg;
  cfg.k = static_cast<uint32_t>(flags.GetInt("k", 16));
  cfg.lambda = flags.GetDouble("lambda", 0.5);
  cfg.max_sweeps = static_cast<uint32_t>(flags.GetInt("sweeps", 60));
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  cfg.use_biases = flags.GetBool("biases", false);
  if (flags.GetString("variant", "absolute") == "relative") {
    cfg.variant = OcularVariant::kRelative;
  }
  return cfg;
}

int CmdStats(const Flags& flags) {
  auto ds = LoadInput(flags);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", RenderDatasetStats(
                        ComputeDatasetStats(ds->interactions())).c_str());
  return 0;
}

int CmdSynth(const Flags& flags) {
  const std::string name = flags.GetString("dataset", "b2b");
  const double scale = flags.GetDouble("scale", 0.02);
  const std::string output = flags.GetString("output", "");
  if (output.empty()) {
    std::fprintf(stderr, "--output is required\n");
    return 1;
  }
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  Result<PlantedCoClusterData> data =
      name == "movielens"   ? MakeMovieLensLike(scale, &rng)
      : name == "citeulike" ? MakeCiteULikeLike(scale, &rng)
      : name == "netflix"   ? MakeNetflixLike(scale, &rng)
      : name == "b2b"       ? MakeB2BLike(scale, &rng)
                            : Result<PlantedCoClusterData>(
                                  Status::InvalidArgument(
                                      "unknown --dataset '" + name + "'"));
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  Status st = SaveCsv(data->dataset, output);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%s)\n", output.c_str(),
              data->dataset.Summary().c_str());
  return 0;
}

int CmdTrain(const Flags& flags) {
  auto ds = LoadInput(flags);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  auto model_path = flags.RequireString("model");
  if (!model_path.ok()) {
    std::fprintf(stderr, "%s\n", model_path.status().ToString().c_str());
    return 1;
  }
  OcularConfig cfg = ConfigFromFlags(flags);
  OcularRecommender rec(cfg);
  Status st = rec.Fit(ds->interactions());
  if (!st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }
  st = SaveModel(rec.model(), cfg, *model_path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("trained %s on %s: %u sweeps, converged=%s, Q=%.4f\n",
              rec.name().c_str(), ds->Summary().c_str(),
              static_cast<unsigned>(rec.trace().size()),
              rec.converged() ? "yes" : "no",
              rec.trace().empty() ? 0.0 : rec.trace().back().objective);
  std::printf("model written to %s (%zu bytes of factors)\n",
              model_path->c_str(), rec.model().MemoryBytes());
  return 0;
}

int CmdRecommend(const Flags& flags) {
  // Accepts v1 text, binary v2, and `*.shardset` manifests alike
  // (LoadModelAuto sniffs and gathers).
  auto loaded = LoadModelAuto(flags.GetString("model"));
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  auto ds = LoadInput(flags);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  const uint32_t m = static_cast<uint32_t>(flags.GetInt("m", 10));

  std::vector<ScoredItem> top;
  if (flags.Has("history")) {
    // Ad-hoc history: fold-in inference for a user not in the training
    // data (new-client serving path).
    std::vector<uint32_t> history;
    const std::string raw_history = flags.GetString("history");
    for (auto field : Split(raw_history, ',')) {
      auto parsed = ParseInt64(field);
      if (!parsed.ok() || parsed.value() < 0) {
        std::fprintf(stderr, "bad --history entry '%s'\n",
                     std::string(field).c_str());
        return 1;
      }
      history.push_back(static_cast<uint32_t>(parsed.value()));
    }
    // Same normalization the daemon applies to wire histories: sort,
    // dedup, drop out-of-catalog ids (warned, not fatal — a stale client
    // list should not kill the query). An empty or fully-dropped history
    // falls back to the deterministic popularity ranking.
    const HistorySanitizeResult sanitized =
        SanitizeHistory(&history, loaded->model.num_items());
    if (sanitized.dropped_out_of_range > 0) {
      std::fprintf(stderr,
                   "warning: dropped %zu --history ids outside the "
                   "model's %u-item catalog\n",
                   sanitized.dropped_out_of_range,
                   loaded->model.num_items());
    }
    auto recs = RecommendForHistory(loaded->model, loaded->config, history, m);
    if (!recs.ok()) {
      std::fprintf(stderr, "%s\n", recs.status().ToString().c_str());
      return 1;
    }
    top = std::move(recs).value();
  } else {
    const int64_t user = flags.GetInt("user", -1);
    if (user < 0 || user >= loaded->model.num_users()) {
      std::fprintf(stderr, "--user out of range (model has %u users)\n",
                   loaded->model.num_users());
      return 1;
    }
    // Blocked scoring engine over the loaded model — the same kernels the
    // bulk RecommendForAllUsers path runs.
    OcularModelRecommender shim(loaded->model);
    std::span<const uint32_t> exclude;
    if (static_cast<uint32_t>(user) < ds->interactions().num_rows()) {
      exclude = ds->interactions().Row(static_cast<uint32_t>(user));
    }
    ServeOptions serve;
    serve.m = m;
    ServeWorkspace ws;
    ws.Reserve(serve.m, serve.block_items);
    auto ranked =
        ServeTopM(shim, static_cast<uint32_t>(user), exclude, serve, &ws);
    top.assign(ranked.begin(), ranked.end());
  }

  if (flags.GetBool("json")) {
    JsonWriter w;
    w.BeginArray();
    for (const auto& si : top) {
      w.BeginObject();
      w.Key("item");
      w.UInt(si.item);
      w.Key("label");
      w.String(ds->ItemLabel(si.item));
      w.Key("score");
      w.Double(si.score);
      w.EndObject();
    }
    w.EndArray();
    std::printf("%s\n", w.str().c_str());
  } else {
    for (const auto& si : top) {
      std::printf("%-30s %.4f\n", ds->ItemLabel(si.item).c_str(), si.score);
    }
  }
  return 0;
}

int CmdExplain(const Flags& flags) {
  auto loaded = LoadModelAuto(flags.GetString("model"));
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  auto ds = LoadInput(flags);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  const int64_t user = flags.GetInt("user", -1);
  const int64_t item = flags.GetInt("item", -1);
  if (user < 0 || item < 0) {
    std::fprintf(stderr, "--user and --item are required\n");
    return 1;
  }
  auto expl = ExplainRecommendation(loaded->model, ds->interactions(),
                                    static_cast<uint32_t>(user),
                                    static_cast<uint32_t>(item));
  if (!expl.ok()) {
    std::fprintf(stderr, "%s\n", expl.status().ToString().c_str());
    return 1;
  }
  if (flags.GetBool("json")) {
    std::printf("%s\n", ExplanationToJson(*expl, *ds).c_str());
  } else {
    std::printf("%s", RenderExplanationText(*expl, *ds).c_str());
  }
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  auto ds = LoadInput(flags);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
  const double train_fraction = flags.GetDouble("train-fraction", 0.75);
  auto split = SplitInteractions(ds->interactions(), train_fraction, &rng);
  if (!split.ok()) {
    std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
    return 1;
  }
  OcularConfig cfg = ConfigFromFlags(flags);
  OcularRecommender rec(cfg);
  Status st = rec.Fit(split->train);
  if (!st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const uint32_t m = static_cast<uint32_t>(flags.GetInt("m", 50));
  auto metrics = EvaluateRankingAtM(rec, split->train, split->test, m);
  if (!metrics.ok()) {
    std::fprintf(stderr, "%s\n", metrics.status().ToString().c_str());
    return 1;
  }
  auto auc = SampledAuc(rec, split->train, split->test, 3, &rng);
  std::printf("%s  K=%u lambda=%s\n", rec.name().c_str(), cfg.k,
              FormatDouble(cfg.lambda, 3).c_str());
  std::printf("recall@%u=%.4f  MAP@%u=%.4f  NDCG@%u=%.4f  MRR@%u=%.4f  "
              "AUC=%.4f  (%u users)\n",
              m, metrics->recall, m, metrics->map, m, metrics->ndcg, m,
              metrics->mrr, auc.ok() ? *auc : 0.0, metrics->num_users);
  return 0;
}

int CmdConvert(const Flags& flags) {
  auto in = flags.RequireString("in");
  auto out = flags.RequireString("out");
  if (!in.ok() || !out.ok()) {
    std::fprintf(stderr, "convert needs --in=FILE and --out=FILE\n");
    return 1;
  }
  // A shardset manifest is text that a v1-model parse would misread line
  // by line — catch it up front and point at the subcommand that
  // understands it.
  if (IsShardSetFile(*in)) {
    std::fprintf(stderr,
                 "%s is a shardset manifest, not a v1 text model; use "
                 "'ocular shard --manifest=%s' to inspect it (convert "
                 "operates on the member .oclr files)\n",
                 in->c_str(), in->c_str());
    return 1;
  }
  const std::string to = flags.GetString("to", "binary");
  Status st;
  if (to == "binary") {
    if (IsBinaryModelFile(*in)) {
      std::fprintf(stderr, "%s is already a binary model file\n",
                   in->c_str());
      return 1;
    }
    st = ConvertTextModelToBinary(*in, *out);
  } else if (to == "text") {
    auto store = ModelStore::Open(*in);
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    auto loaded = store->MaterializeOcular();
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    st = SaveModel(loaded->model, loaded->config, *out);
  } else {
    std::fprintf(stderr, "--to must be 'binary' or 'text'\n");
    return 1;
  }
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out->c_str());
  return 0;
}

int CmdShard(const Flags& flags) {
  // Inspect/route mode: read an existing manifest, optionally answer
  // "which shard serves user U" from the pure routing table.
  if (flags.Has("manifest")) {
    const std::string manifest_path = flags.GetString("manifest");
    auto manifest = LoadShardSetManifest(manifest_path);
    if (!manifest.ok()) {
      std::fprintf(stderr, "%s\n", manifest.status().ToString().c_str());
      return 1;
    }
    auto map = manifest->Map();
    if (!map.ok()) {
      std::fprintf(stderr, "%s\n", map.status().ToString().c_str());
      return 1;
    }
    if (flags.Has("route")) {
      const int64_t user = flags.GetInt("route", -1);
      if (user < 0 || user >= map->num_users()) {
        std::fprintf(stderr, "--route out of range (shardset has %u users)\n",
                     map->num_users());
        return 1;
      }
      const uint32_t s = map->shard_of(static_cast<uint32_t>(user));
      std::printf("user %lld -> shard %u [%u, %u) in %s\n",
                  static_cast<long long>(user), s, map->begin(s), map->end(s),
                  manifest->shards[s].file.c_str());
      return 0;
    }
    std::printf("%s: %u users x %u items, K=%u, %zu shards (%s split)\n",
                manifest_path.c_str(), manifest->num_users,
                manifest->num_items, manifest->k, manifest->shards.size(),
                manifest->split.c_str());
    std::printf("  items %s fp=%016llx\n", manifest->items_file.c_str(),
                static_cast<unsigned long long>(manifest->items_fingerprint));
    for (size_t s = 0; s < manifest->shards.size(); ++s) {
      const ShardSetEntry& e = manifest->shards[s];
      std::printf("  shard %03zu [%u, %u) %s fp=%016llx\n", s, e.user_begin,
                  e.user_end, e.file.c_str(),
                  static_cast<unsigned long long>(e.fingerprint));
    }
    return 0;
  }

  // Split mode: cut one binary model into an N-shard set.
  auto in = flags.RequireString("in");
  auto out = flags.RequireString("out");
  if (!in.ok() || !out.ok()) {
    std::fprintf(stderr,
                 "shard needs --in=FILE.oclr --out=BASE.shardset --shards=N "
                 "(or --manifest=FILE.shardset to inspect)\n");
    return 1;
  }
  const int64_t shards = flags.GetInt("shards", 0);
  if (shards < 1 || shards > UINT32_MAX) {
    std::fprintf(stderr, "--shards must be at least 1\n");
    return 1;
  }
  auto store = ModelStore::Open(*in);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  Status st = SaveModelSharded(store->meta(), store->user_factors(),
                               store->item_factors(), store->item_factors_t(),
                               static_cast<uint32_t>(shards), *out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %u users x %u items split %u ways\n", out->c_str(),
              store->num_users(), store->num_items(),
              static_cast<uint32_t>(shards));
  return 0;
}

int CmdLoadtest(const Flags& flags) {
  LoadGenOptions options;
  const int64_t port = flags.GetInt("port", 0);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "loadtest needs --port of a running daemon\n");
    return 1;
  }
  options.port = static_cast<uint16_t>(port);

  // Idle-flood mode: hold --idle-conns keep-alive connections (plus
  // optional slowloris dribblers and never-reading consumers) while
  // --burst-clients do real traffic through the flood. Exercises the
  // daemon's event-driven connection core rather than raw throughput.
  const int64_t idle_conns = flags.GetInt("idle-conns", 0);
  if (idle_conns > 0) {
    IdleFloodOptions flood;
    flood.port = options.port;
    const int64_t burst_clients = flags.GetInt("burst-clients", 4);
    const int64_t requests = flags.GetInt("requests", 500);
    const int64_t pipeline = flags.GetInt("pipeline", 8);
    const int64_t m = flags.GetInt("m", 20);
    const int64_t users = flags.GetInt("users", 1);
    const int64_t slow_writers = flags.GetInt("slow-writers", 0);
    const int64_t never_readers = flags.GetInt("never-readers", 0);
    const int64_t duration_ms = flags.GetInt("duration-ms", 1000);
    const double zipf_skew = flags.GetDouble("zipf-skew", 3.0);
    if (idle_conns > 1'000'000 || burst_clients < 0 || burst_clients > 4096 ||
        requests < 1 || requests > 100'000'000 || pipeline < 1 ||
        pipeline > 512 || m < 1 || m > UINT32_MAX || users < 1 ||
        users > UINT32_MAX || slow_writers < 0 || slow_writers > 65536 ||
        never_readers < 0 || never_readers > 65536 || duration_ms < 0 ||
        duration_ms > 3600000 || zipf_skew < 0.0 || zipf_skew > 64.0) {
      std::fprintf(stderr,
                   "idle-flood flags out of range: --idle-conns in [1, 1e6], "
                   "--burst-clients in [0, 4096], --pipeline in [1, 512], "
                   "--slow-writers/--never-readers in [0, 65536], "
                   "--duration-ms in [0, 3600000], --zipf-skew in [0, 64]\n");
      return 1;
    }
    flood.idle_conns = static_cast<uint32_t>(idle_conns);
    flood.burst_clients = static_cast<uint32_t>(burst_clients);
    flood.requests_per_client = static_cast<uint64_t>(requests);
    flood.pipeline = static_cast<uint32_t>(pipeline);
    flood.m = static_cast<uint32_t>(m);
    flood.num_users = static_cast<uint32_t>(users);
    flood.model = flags.GetString("model", "default");
    flood.zipf_skew = zipf_skew;
    flood.slow_writers = static_cast<uint32_t>(slow_writers);
    flood.never_readers = static_cast<uint32_t>(never_readers);
    flood.duration_ms = static_cast<uint32_t>(duration_ms);
    auto flood_result = RunIdleFlood(flood);
    if (!flood_result.ok()) {
      std::fprintf(stderr, "%s\n", flood_result.status().ToString().c_str());
      return 1;
    }
    if (flags.GetBool("json")) {
      JsonWriter w;
      w.BeginObject();
      w.Key("idle_conns");
      w.UInt(flood.idle_conns);
      w.Key("connections_held");
      w.UInt(flood_result->connections_held);
      w.Key("connections_dropped");
      w.UInt(flood_result->connections_dropped);
      w.Key("slow_writers_reaped");
      w.UInt(flood_result->slow_writers_reaped);
      w.Key("never_readers_closed");
      w.UInt(flood_result->never_readers_closed);
      w.Key("burst_requests");
      w.UInt(flood_result->burst_requests);
      w.Key("burst_ok");
      w.UInt(flood_result->burst_ok);
      w.Key("burst_errors");
      w.UInt(flood_result->burst_errors);
      w.Key("shed_retries");
      w.UInt(flood_result->shed_retries);
      w.Key("burst_rps");
      w.Double(flood_result->burst_rps);
      w.Key("burst_p50_us");
      w.Double(flood_result->burst_p50_us);
      w.Key("burst_p99_us");
      w.Double(flood_result->burst_p99_us);
      w.Key("seconds");
      w.Double(flood_result->seconds);
      w.EndObject();
      std::printf("%s\n", w.str().c_str());
    } else {
      std::printf("idle flood: %llu/%u connections held for %.3f s\n",
                  static_cast<unsigned long long>(
                      flood_result->connections_held),
                  flood.idle_conns, flood_result->seconds);
      std::printf("  burst     : %llu requests, %llu ok, %llu errors, "
                  "%.0f req/s, p99 %.1f us\n",
                  static_cast<unsigned long long>(flood_result->burst_requests),
                  static_cast<unsigned long long>(flood_result->burst_ok),
                  static_cast<unsigned long long>(flood_result->burst_errors),
                  flood_result->burst_rps, flood_result->burst_p99_us);
      if (flood.slow_writers > 0) {
        std::printf("  slowloris : %llu/%u reaped by the server\n",
                    static_cast<unsigned long long>(
                        flood_result->slow_writers_reaped),
                    flood.slow_writers);
      }
      if (flood.never_readers > 0) {
        std::printf("  mute conns: %llu/%u disconnected by the server\n",
                    static_cast<unsigned long long>(
                        flood_result->never_readers_closed),
                    flood.never_readers);
      }
      if (flood_result->shed_retries > 0) {
        std::printf("  shed      : %llu 503 replies absorbed by backoff\n",
                    static_cast<unsigned long long>(
                        flood_result->shed_retries));
      }
    }
    const bool healthy = flood_result->connections_held == flood.idle_conns &&
                         flood_result->burst_errors == 0;
    return healthy ? 0 : 3;
  }

  const int64_t clients = flags.GetInt("clients", 8);
  const int64_t requests = flags.GetInt("requests", 1000);
  const int64_t pipeline = flags.GetInt("pipeline", 16);
  const int64_t m = flags.GetInt("m", 50);
  const int64_t users = flags.GetInt("users", 1);
  // --pipeline is capped so one request batch always fits in the socket
  // buffers: the client writes the whole batch before reading, so an
  // oversized batch would deadlock against a worker blocked writing
  // replies the client is not yet consuming.
  if (clients < 1 || clients > 4096 || requests < 1 ||
      requests > 100'000'000 || pipeline < 1 || pipeline > 512 || m < 1 ||
      m > UINT32_MAX || users < 1 || users > UINT32_MAX) {
    std::fprintf(stderr,
                 "loadtest flags out of range: --clients in [1, 4096], "
                 "--pipeline in [1, 512], --requests in [1, 1e8], "
                 "--m/--users >= 1\n");
    return 1;
  }
  options.clients = static_cast<uint32_t>(clients);
  options.requests_per_client = static_cast<uint64_t>(requests);
  options.pipeline = static_cast<uint32_t>(pipeline);
  options.m = static_cast<uint32_t>(m);
  options.num_users = static_cast<uint32_t>(users);
  options.model = flags.GetString("model", "default");
  // Mixed-verb traffic: --history-every=N makes every Nth request per
  // client a fold-in "history" request over a catalog of --items ids.
  const int64_t history_every = flags.GetInt("history-every", 0);
  const int64_t history_len = flags.GetInt("history-len", 8);
  const int64_t items = flags.GetInt("items", 0);
  if (history_every < 0 || history_every > UINT32_MAX || history_len < 1 ||
      history_len > 4096 || items < 0 || items > UINT32_MAX) {
    std::fprintf(stderr,
                 "loadtest history flags out of range: --history-every "
                 ">= 0, --history-len in [1, 4096], --items >= 0\n");
    return 1;
  }
  if (history_every > 0 && items == 0) {
    std::fprintf(stderr,
                 "--history-every needs --items=I (the catalog size "
                 "generated histories draw from)\n");
    return 1;
  }
  options.history_every = static_cast<uint32_t>(history_every);
  options.history_len = static_cast<uint32_t>(history_len);
  options.num_items = static_cast<uint32_t>(items);
  // Fleet mode: ride through a proxy or replica restarting mid-run by
  // rolling back and resending the outstanding batch instead of failing.
  options.reconnect_on_close = flags.GetBool("reconnect", false);

  auto result = RunLoadGen(options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  if (flags.GetBool("json")) {
    JsonWriter w;
    w.BeginObject();
    w.Key("clients");
    w.UInt(options.clients);
    w.Key("pipeline");
    w.UInt(options.pipeline);
    w.Key("requests");
    w.UInt(result->requests);
    w.Key("ok_replies");
    w.UInt(result->ok_replies);
    w.Key("error_replies");
    w.UInt(result->error_replies);
    w.Key("shed_retries");
    w.UInt(result->shed_retries);
    w.Key("reconnects");
    w.UInt(result->reconnects);
    w.Key("seconds");
    w.Double(result->seconds);
    w.Key("requests_per_second");
    w.Double(result->requests_per_second);
    w.Key("p50_latency_us");
    w.Double(result->p50_latency_us);
    w.Key("p99_latency_us");
    w.Double(result->p99_latency_us);
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("%llu requests over %u clients (pipeline %u) in %.3f s\n",
                static_cast<unsigned long long>(result->requests),
                options.clients, options.pipeline, result->seconds);
    std::printf("  throughput: %10.0f req/s\n", result->requests_per_second);
    std::printf("  latency   : p50 %.1f us, p99 %.1f us\n",
                result->p50_latency_us, result->p99_latency_us);
    if (result->error_replies > 0) {
      std::printf("  errors    : %llu replies answered ok:false\n",
                  static_cast<unsigned long long>(result->error_replies));
    }
    if (result->shed_retries > 0) {
      std::printf("  shed      : %llu 503 replies absorbed by backoff\n",
                  static_cast<unsigned long long>(result->shed_retries));
    }
    if (result->reconnects > 0) {
      std::printf("  reconnects: %llu dropped connections ridden through\n",
                  static_cast<unsigned long long>(result->reconnects));
    }
  }
  return result->error_replies == 0 ? 0 : 3;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  const std::string command = argv[1];
  Flags flags = Flags::Parse(argc - 1, argv + 1);
  if (command == "stats") return CmdStats(flags);
  if (command == "synth") return CmdSynth(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "recommend") return CmdRecommend(flags);
  if (command == "explain") return CmdExplain(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "convert") return CmdConvert(flags);
  if (command == "shard") return CmdShard(flags);
  if (command == "serve") return RunServeCommand(flags);
  if (command == "loadtest") return CmdLoadtest(flags);
  std::fprintf(stderr, "unknown command '%s'\n%s", command.c_str(), kUsage);
  return 2;
}

}  // namespace
}  // namespace ocular

int main(int argc, char** argv) { return ocular::Run(argc, argv); }
