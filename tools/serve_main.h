// Shared driver of the `ocular_served` binary and the `ocular_cli serve`
// subcommand: parses --models/--datasets specs, fills a ModelRegistry, and
// runs the RequestServer over stdio or TCP.
//
// Flags:
//   --models=name=path[,name=path...]    binary v2 model files (required)
//   --datasets=name=path[,...]           optional per-model exclusion data
//   --delimiter=C                        dataset delimiter (default tab)
//   --port=N                             TCP on 127.0.0.1:N (default stdio)
//   --m=N                                default top-M per request (50)
//   --workers=N                          TCP worker threads (0 = one per
//                                        hardware thread)
//   --accept-queue=N                     dispatch-queue depth between the
//                                        IO thread and the workers (128);
//                                        a full queue is backpressure,
//                                        not shedding
//   --max-connections=N                  open connections admitted before
//                                        new arrivals get a 503 shed
//                                        (0 = unlimited)
//   --max-outbound-bytes=N               per-connection reply backlog a
//                                        slow consumer may hold before
//                                        disconnect (8 MiB)
//   --update-sweeps=N                    default trainer sweeps an `update`
//                                        request runs when it does not set
//                                        its own "sweeps" (5)
//   --max-request-bytes=N                longest request line before a
//                                        413-style reply + close (1 MiB)
//   --io-timeout-ms=N                    IO-loop deadline sweep tick and
//                                        write-stall deadline (1000;
//                                        0 = no deadlines)
//   --idle-timeout-ms=N                  close connections with no complete
//                                        request for this long (30000;
//                                        0 = never)
//   --retry-after-ms=N                   backoff hint in 503 shed replies
//                                        (50)
//   --journal=0|1                        write-ahead journal every update
//                                        to <model>.update.journal and
//                                        recover it at startup (1)
//
// The process installs the SIGHUP hot-reload handler and the
// SIGTERM/SIGINT graceful-drain handler before serving, and replays each
// model's update journal (crash recovery) before accepting requests.

#ifndef OCULAR_TOOLS_SERVE_MAIN_H_
#define OCULAR_TOOLS_SERVE_MAIN_H_

#include <signal.h>

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/strings.h"
#include "data/loaders.h"
#include "serving/daemon.h"
#include "serving/registry.h"

namespace ocular {

/// Splits "name=path[,name=path...]" into pairs (first '=' delimits).
inline Result<std::vector<std::pair<std::string, std::string>>>
ParseNamePathSpecs(const std::string& specs) {
  std::vector<std::pair<std::string, std::string>> out;
  for (std::string_view spec : Split(specs, ',')) {
    const size_t eq = spec.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == spec.size()) {
      return Status::InvalidArgument("malformed spec '" + std::string(spec) +
                                     "' (expected name=path)");
    }
    out.emplace_back(std::string(spec.substr(0, eq)),
                     std::string(spec.substr(eq + 1)));
  }
  return out;
}

/// Loads every --models (and --datasets) entry into `registry`.
inline Status LoadRegistryFromFlags(const Flags& flags,
                                    ModelRegistry* registry) {
  OCULAR_ASSIGN_OR_RETURN(std::string models_spec,
                          flags.RequireString("models"));
  OCULAR_ASSIGN_OR_RETURN(auto model_specs, ParseNamePathSpecs(models_spec));

  std::vector<std::pair<std::string, std::string>> dataset_specs;
  if (flags.Has("datasets")) {
    OCULAR_ASSIGN_OR_RETURN(dataset_specs,
                            ParseNamePathSpecs(flags.GetString("datasets")));
  }
  for (const auto& [name, model_path] : model_specs) {
    std::shared_ptr<const CsrMatrix> train;
    for (const auto& [data_name, data_path] : dataset_specs) {
      if (data_name != name) continue;
      CsvOptions opts;
      const std::string delim = flags.GetString("delimiter", "\t");
      opts.delimiter = delim.empty() ? '\t' : delim[0];
      // Keep raw ids so dataset row u IS model/request user u — compact
      // remapping would silently bind exclusions to the wrong users.
      opts.compact_ids = flags.GetBool("compact-ids", false);
      OCULAR_ASSIGN_OR_RETURN(Dataset ds, LoadCsv(data_path, opts));
      train = std::make_shared<const CsrMatrix>(ds.interactions());
      break;
    }
    OCULAR_RETURN_IF_ERROR(registry->Load(name, model_path, std::move(train)));
  }
  return Status::OK();
}

/// Full serve command: registry + SIGHUP handler + stdio/TCP loop.
/// Returns a process exit code.
inline int RunServeCommand(const Flags& flags) {
  ModelRegistry registry;
  Status st = LoadRegistryFromFlags(flags, &registry);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  RequestServer::Options options;
  options.serve.m = static_cast<uint32_t>(flags.GetInt("m", 50));
  const int64_t workers = flags.GetInt("workers", 0);
  if (workers < 0 || workers > 4096) {
    std::fprintf(stderr, "--workers must be in [0, 4096] (0 = one per "
                         "hardware thread)\n");
    return 1;
  }
  options.num_workers = static_cast<size_t>(workers);
  const int64_t accept_queue = flags.GetInt("accept-queue", 128);
  if (accept_queue < 1 || accept_queue > 1 << 20) {
    std::fprintf(stderr, "--accept-queue must be in [1, 1048576]\n");
    return 1;
  }
  options.accept_queue = static_cast<size_t>(accept_queue);
  const int64_t max_connections = flags.GetInt("max-connections", 0);
  if (max_connections < 0 || max_connections > 1 << 20) {
    std::fprintf(stderr,
                 "--max-connections must be in [0, 1048576] (0 = unlimited)\n");
    return 1;
  }
  options.max_connections = static_cast<size_t>(max_connections);
  const int64_t max_outbound_bytes =
      flags.GetInt("max-outbound-bytes", 8 << 20);
  if (max_outbound_bytes < (64 << 10) || max_outbound_bytes > (1 << 30)) {
    std::fprintf(stderr, "--max-outbound-bytes must be in [65536, 2^30]\n");
    return 1;
  }
  options.max_outbound_bytes = static_cast<size_t>(max_outbound_bytes);
  const int64_t update_sweeps = flags.GetInt("update-sweeps", 5);
  if (update_sweeps < 1 || update_sweeps > 100000) {
    std::fprintf(stderr, "--update-sweeps must be in [1, 100000]\n");
    return 1;
  }
  options.update_sweeps = static_cast<uint32_t>(update_sweeps);
  const int64_t max_request_bytes =
      flags.GetInt("max-request-bytes", 1 << 20);
  if (max_request_bytes < 1024 || max_request_bytes > (1 << 30)) {
    std::fprintf(stderr, "--max-request-bytes must be in [1024, 2^30]\n");
    return 1;
  }
  options.max_request_bytes = static_cast<size_t>(max_request_bytes);
  const int64_t io_timeout_ms = flags.GetInt("io-timeout-ms", 1000);
  if (io_timeout_ms < 0 || io_timeout_ms > 3600000) {
    std::fprintf(stderr, "--io-timeout-ms must be in [0, 3600000]\n");
    return 1;
  }
  options.io_timeout_ms = static_cast<uint32_t>(io_timeout_ms);
  const int64_t idle_timeout_ms = flags.GetInt("idle-timeout-ms", 30000);
  if (idle_timeout_ms < 0 || idle_timeout_ms > 86400000) {
    std::fprintf(stderr, "--idle-timeout-ms must be in [0, 86400000]\n");
    return 1;
  }
  options.idle_timeout_ms = static_cast<uint32_t>(idle_timeout_ms);
  const int64_t retry_after_ms = flags.GetInt("retry-after-ms", 50);
  if (retry_after_ms < 1 || retry_after_ms > 60000) {
    std::fprintf(stderr, "--retry-after-ms must be in [1, 60000]\n");
    return 1;
  }
  options.retry_after_ms = static_cast<uint32_t>(retry_after_ms);
  options.update_journal = flags.GetBool("journal", true);
  RequestServer server(&registry, options);
  RequestServer::InstallReloadSignalHandler();
  RequestServer::InstallShutdownSignalHandler();
  // The daemon's socket writes use MSG_NOSIGNAL, but ignore SIGPIPE
  // process-wide too: no disconnecting client may take the server down.
  ::signal(SIGPIPE, SIG_IGN);

  // Crash recovery before the first request: re-merge journaled update
  // deltas into each model's training base, and resolve any update the
  // previous incarnation crashed inside (replay or heal — see
  // RequestServer::RecoverJournal). Refusing to serve on a recovery error
  // beats silently serving a model that is missing acked updates.
  if (options.update_journal) {
    for (const std::string& name : registry.Names()) {
      auto recovered = server.RecoverJournal(name);
      if (!recovered.ok()) {
        std::fprintf(stderr, "journal recovery for '%s' failed: %s\n",
                     name.c_str(), recovered.status().ToString().c_str());
        return 1;
      }
      if (recovered->applied_merged > 0 || recovered->replayed_pending ||
          recovered->healed_commit) {
        std::fprintf(
            stderr,
            "journal recovery for '%s': %llu committed updates re-merged%s%s%s\n",
            name.c_str(),
            static_cast<unsigned long long>(recovered->applied_merged),
            recovered->replayed_pending ? ", crashed update replayed" : "",
            recovered->healed_commit ? ", missing commit healed" : "",
            recovered->torn_tail ? ", torn tail discarded" : "");
      }
    }
  }

  const int64_t port = flags.GetInt("port", 0);
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "--port must be in [1, 65535] (0 = stdio)\n");
    return 1;
  }
  for (const std::string& name : registry.Names()) {
    auto model = registry.Get(name);
    std::fprintf(stderr,
                 "loaded '%s': %s %u users x %u items, K=%u (%zu MB, %u "
                 "shard%s)\n",
                 name.c_str(), model->meta().algorithm.c_str(),
                 model->num_users(), model->num_items(), model->k(),
                 model->mapped_bytes() >> 20, model->num_shards(),
                 model->num_shards() == 1 ? "" : "s");
  }
  if (port > 0) {
    std::fprintf(stderr,
                 "serving on 127.0.0.1:%lld with %zu workers "
                 "(SIGHUP reloads, SIGTERM drains)\n",
                 static_cast<long long>(port), server.num_workers());
    st = server.RunTcpLoop(static_cast<uint16_t>(port));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  } else {
    std::fprintf(stderr, "serving on stdin/stdout (SIGHUP reloads)\n");
    server.RunStdioLoop(std::cin, std::cout);
  }
  return 0;
}

}  // namespace ocular

#endif  // OCULAR_TOOLS_SERVE_MAIN_H_
