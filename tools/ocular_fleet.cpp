// ocular_fleet — replicated-serving front tier for OCuLaR daemons.
//
// Proxies the newline-JSON serving protocol onto N `ocular_served`
// replicas over keep-alive loopback TCP: rendezvous-hash routing on
// `user`, per-replica health probing with ejection/readmission, one
// bounded failover retry, optional hedged requests, and 503 shedding in
// both directions (see src/serving/fleet.h and the "Running a fleet"
// runbook in docs/OPERATIONS.md).
//
// Two ways to get replicas:
//   attach:  ocular_fleet --port=7700 --replicas=7701,7702,7703
//   spawn:   ocular_fleet --port=7700 --spawn=3 \
//                --served=./ocular_served --models=default=/models/b2b.oclr
// Spawned replicas are SIGTERM-drained (then SIGKILLed if stubborn) when
// the fleet exits. SIGTERM to the fleet itself drains the front door
// gracefully and prints a final stats line.

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/strings.h"
#include "serving/daemon.h"
#include "serving/fleet.h"

namespace ocular {
namespace {

constexpr char kUsage[] = R"(usage: ocular_fleet --port=N
        (--replicas=P1,P2[,...] | --spawn=N --served=PATH --models=SPEC
         [--datasets=SPEC] [--journal=0|1] [--base-port=N]
         [--replica-workers=N])
        [--workers=N] [--accept-queue=N] [--io-timeout-ms=N]
        [--hedge-after-ms=N] [--probe-interval-ms=N] [--retry-after-ms=N]
        [--fail-threshold=N] [--reopen-after-ms=N]

Front-tier proxy over N ocular_served replicas on 127.0.0.1. Attach to
replicas already running with --replicas, or spawn them with --spawn
(flags --served/--models/--datasets/--journal are passed through; ports
are --base-port, --base-port+1, ...). `recommend`/`models` and unknown
verbs are forwarded (consistent-hashed on "user"); `ping` and `stats`
answer for the fleet itself; `update`/`reload` are refused — apply them
to each replica directly or the fleet's models fork. --hedge-after-ms=N
sends a second copy of a request whose primary is silent after N ms and
takes the first reply (0 = off). SIGTERM drains gracefully.
)";

std::vector<pid_t> g_children;

void ReapChildren() {
  // Drain politely first; a replica that ignores SIGTERM for 5s gets
  // SIGKILL — the fleet must never hang in its own exit path.
  for (const pid_t pid : g_children) ::kill(pid, SIGTERM);
  for (const pid_t pid : g_children) {
    for (int tick = 0; tick < 500; ++tick) {
      if (::waitpid(pid, nullptr, WNOHANG) == pid) {
        goto next_child;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
  next_child:;
  }
  g_children.clear();
}

/// fork/execs one ocular_served replica on `port`, passing the model
/// flags through. Returns false when the exec setup fails.
bool SpawnReplica(const std::string& served, const Flags& flags,
                  uint16_t port) {
  std::vector<std::string> args;
  args.push_back(served);
  args.push_back("--models=" + flags.GetString("models"));
  if (flags.Has("datasets")) {
    args.push_back("--datasets=" + flags.GetString("datasets"));
  }
  if (flags.Has("delimiter")) {
    args.push_back("--delimiter=" + flags.GetString("delimiter"));
  }
  args.push_back("--journal=" + std::string(flags.GetBool("journal", true)
                                                ? "1"
                                                : "0"));
  // Replicas multiplex every connection on one epoll IO thread, so idle
  // keep-alive connections (the fleet's pinned front-tier sockets, the
  // health prober) cost no worker at all — workers only size request
  // compute. Match the CPU instead of the old `front workers + 2` rule,
  // which oversubscribed cores on small machines and never helped probes
  // anyway. --replica-workers overrides the derived default.
  const int64_t hw = static_cast<int64_t>(std::thread::hardware_concurrency());
  args.push_back("--workers=" +
                 std::to_string(flags.GetInt("replica-workers",
                                             hw > 0 ? hw : 1)));
  args.push_back("--port=" + std::to_string(port));
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    std::fprintf(stderr, "exec %s: %s\n", served.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  g_children.push_back(pid);
  return true;
}

/// Blocks until something accepts on 127.0.0.1:`port` (or ~10s pass).
bool WaitForPort(uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (int tick = 0; tick < 1000; ++tick) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      ::close(fd);
      return true;
    }
    if (fd >= 0) ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

int Run(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const int64_t port = flags.GetInt("port", 0);
  if (port < 1 || port > 65535) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  std::vector<uint16_t> replicas;
  const int64_t spawn = flags.GetInt("spawn", 0);
  if (spawn > 0) {
    if (spawn > 64 || !flags.Has("served") || !flags.Has("models")) {
      std::fprintf(stderr, "%s", kUsage);
      return 2;
    }
    const int64_t base_port = flags.GetInt("base-port", port + 1);
    if (base_port < 1 || base_port + spawn - 1 > 65535) {
      std::fprintf(stderr, "--base-port leaves no room for %lld replicas\n",
                   static_cast<long long>(spawn));
      return 2;
    }
    const std::string served = flags.GetString("served");
    for (int64_t i = 0; i < spawn; ++i) {
      const uint16_t p = static_cast<uint16_t>(base_port + i);
      if (!SpawnReplica(served, flags, p)) {
        ReapChildren();
        return 1;
      }
      replicas.push_back(p);
    }
    for (const uint16_t p : replicas) {
      if (!WaitForPort(p)) {
        std::fprintf(stderr, "replica on 127.0.0.1:%u never came up\n", p);
        ReapChildren();
        return 1;
      }
    }
  } else if (flags.Has("replicas")) {
    for (std::string_view part : Split(flags.GetString("replicas"), ',')) {
      int value = 0;
      for (const char c : part) {
        if (c < '0' || c > '9') {
          value = -1;
          break;
        }
        value = value * 10 + (c - '0');
        if (value > 65535) break;
      }
      if (value < 1 || value > 65535) {
        std::fprintf(stderr, "bad replica port '%.*s'\n",
                     static_cast<int>(part.size()), part.data());
        return 2;
      }
      replicas.push_back(static_cast<uint16_t>(value));
    }
  }
  if (replicas.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  FleetServer::Options options;
  options.replicas = replicas;
  const int64_t workers = flags.GetInt("workers", 4);
  if (workers < 1 || workers > 4096) {
    std::fprintf(stderr, "--workers must be in [1, 4096]\n");
    return 1;
  }
  options.num_workers = static_cast<size_t>(workers);
  const int64_t accept_queue = flags.GetInt("accept-queue", 128);
  if (accept_queue < 1 || accept_queue > 1 << 20) {
    std::fprintf(stderr, "--accept-queue must be in [1, 1048576]\n");
    return 1;
  }
  options.accept_queue = static_cast<size_t>(accept_queue);
  const int64_t io_timeout_ms = flags.GetInt("io-timeout-ms", 1000);
  if (io_timeout_ms < 1 || io_timeout_ms > 3600000) {
    std::fprintf(stderr, "--io-timeout-ms must be in [1, 3600000]\n");
    return 1;
  }
  options.io_timeout_ms = static_cast<uint32_t>(io_timeout_ms);
  const int64_t hedge_after_ms = flags.GetInt("hedge-after-ms", 0);
  if (hedge_after_ms < 0 || hedge_after_ms > 3600000) {
    std::fprintf(stderr, "--hedge-after-ms must be in [0, 3600000]\n");
    return 1;
  }
  options.hedge_after_ms = static_cast<uint32_t>(hedge_after_ms);
  const int64_t probe_interval_ms = flags.GetInt("probe-interval-ms", 200);
  if (probe_interval_ms < 10 || probe_interval_ms > 60000) {
    std::fprintf(stderr, "--probe-interval-ms must be in [10, 60000]\n");
    return 1;
  }
  options.probe_interval_ms = static_cast<uint32_t>(probe_interval_ms);
  const int64_t retry_after_ms = flags.GetInt("retry-after-ms", 100);
  if (retry_after_ms < 1 || retry_after_ms > 60000) {
    std::fprintf(stderr, "--retry-after-ms must be in [1, 60000]\n");
    return 1;
  }
  options.retry_after_ms = static_cast<uint32_t>(retry_after_ms);
  const int64_t fail_threshold = flags.GetInt("fail-threshold", 3);
  if (fail_threshold < 1 || fail_threshold > 1000) {
    std::fprintf(stderr, "--fail-threshold must be in [1, 1000]\n");
    return 1;
  }
  options.health.fail_threshold = static_cast<uint32_t>(fail_threshold);
  const int64_t reopen_after_ms = flags.GetInt("reopen-after-ms", 500);
  if (reopen_after_ms < 10 || reopen_after_ms > 600000) {
    std::fprintf(stderr, "--reopen-after-ms must be in [10, 600000]\n");
    return 1;
  }
  options.health.reopen_after_ms = static_cast<uint32_t>(reopen_after_ms);

  FleetServer fleet(options);
  RequestServer::InstallShutdownSignalHandler();
  ::signal(SIGPIPE, SIG_IGN);

  std::string replica_list;
  for (const uint16_t p : replicas) {
    if (!replica_list.empty()) replica_list += ",";
    replica_list += std::to_string(p);
  }
  std::fprintf(stderr,
               "fleet on 127.0.0.1:%lld over replicas [%s] with %zu workers"
               "%s (SIGTERM drains)\n",
               static_cast<long long>(port), replica_list.c_str(),
               options.num_workers,
               options.hedge_after_ms > 0 ? ", hedging on" : "");
  const Status st = fleet.RunLoop(static_cast<uint16_t>(port));
  ReapChildren();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ocular

int main(int argc, char** argv) { return ocular::Run(argc, argv); }
